//! The speculative coloring driver (Algorithm 1) for BGPC.

use std::time::{Duration, Instant};

use graph::BipartiteGraph;
use par::{Pool, ThreadScratch};
use sparse::CsrIndex;

use crate::ctx::ThreadCtx;
use crate::error::{validate_order, ColoringError};
use crate::forbidden::ForbiddenSet;
use crate::metrics::{
    count_distinct_colors, ColoringResult, DegradeReason, FailedPhase, IterationMetrics,
    ThreadIterStats,
};
use crate::schedule::PhaseKind;
use crate::workqueue::SharedQueue;
use crate::{net, vertex, Colors, Schedule, UNCOLORED};

/// Default iteration cap before the driver abandons speculation and colors
/// the remaining queue sequentially. Real runs finish in a handful of
/// iterations; the cap is a liveness guard for adversarial inputs.
const MAX_ITERATIONS: usize = 256;

/// Tuning knobs of the speculative driver that are not part of the
/// [`Schedule`] (they do not correspond to a paper configuration).
#[derive(Clone, Debug)]
pub struct RunnerOpts {
    /// Iteration cap before the sequential liveness fallback; the run is
    /// reported as degraded ([`DegradeReason::IterationCap`]) if it trips.
    pub max_iterations: usize,
    /// Wall-clock deadline: the driver polls it between iterations and,
    /// once passed, repairs the best-so-far partial coloring sequentially
    /// and reports [`DegradeReason::DeadlineExceeded`]. `None` disables
    /// the check.
    pub deadline: Option<Instant>,
    /// External cancellation, polled alongside `deadline` (the serving
    /// layer's watchdog trips it). A cancelled run degrades exactly like a
    /// missed deadline: valid, complete, tagged `DeadlineExceeded`.
    pub cancel: Option<crate::CancelToken>,
    /// Between-iteration refinement: when set, the driver hands each
    /// completed iteration's metrics to the tuner, which may truncate net
    /// phases, flip the chunk scheduler, or shrink the chunk size for the
    /// *remaining* iterations (the `--autotune` online loop). Actions are
    /// reported in [`ColoringResult::tuner_actions`]; `None` keeps the
    /// schedule fixed for the whole run.
    pub online: Option<crate::engine::OnlineTuner>,
}

impl Default for RunnerOpts {
    fn default() -> Self {
        Self {
            max_iterations: MAX_ITERATIONS,
            deadline: None,
            cancel: None,
            online: None,
        }
    }
}

impl RunnerOpts {
    /// Whether the deadline has passed or the cancel token was tripped.
    /// Polled by the drivers once per speculative iteration.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }
}

/// Runs the full speculative BGPC loop with the given [`Schedule`].
///
/// `order` is the processing order of the colored side (`V_A`); it doubles
/// as the initial work queue. Returns the final (valid, complete) coloring
/// plus per-iteration metrics.
///
/// # Fault model
///
/// A panic inside a parallel phase (or an iteration-cap trip) does not
/// abort the run: the partial state is repaired sequentially and the
/// result is flagged via [`ColoringResult::degraded`]. The coloring is
/// valid and complete either way.
pub fn color_bgpc<I: CsrIndex>(
    g: &BipartiteGraph<I>,
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
) -> ColoringResult {
    color_bgpc_with_opts(g, order, schedule, pool, RunnerOpts::default())
}

/// [`color_bgpc`] with an order validated against the vertex set — the
/// entry point for untrusted inputs (CLI, external order files).
pub fn try_color_bgpc<I: CsrIndex>(
    g: &BipartiteGraph<I>,
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
) -> Result<ColoringResult, ColoringError> {
    validate_order(order, g.n_vertices())?;
    Ok(color_bgpc(g, order, schedule, pool))
}

/// [`color_bgpc`] with explicit [`RunnerOpts`]. Picks the forbidden-set
/// representation per instance: the word-packed [`crate::BitStampSet`]
/// by default, the per-color [`crate::StampSet`] when the largest net
/// exceeds [`crate::tuning::DENSE_FORBIDDEN_CUTOFF`] (insert-dominated
/// regime — see the constant's docs for why). Use
/// [`color_bgpc_with_set`] to force a representation.
pub fn color_bgpc_with_opts<I: CsrIndex>(
    g: &BipartiteGraph<I>,
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    if g.max_net_size() > crate::tuning::DENSE_FORBIDDEN_CUTOFF {
        color_bgpc_with_set::<crate::StampSet, I>(g, order, schedule, pool, opts)
    } else {
        color_bgpc_with_set::<crate::BitStampSet, I>(g, order, schedule, pool, opts)
    }
}

/// [`color_bgpc`] generic over the forbidden-set representation `F` —
/// the benchmark harness runs the same driver with [`crate::StampSet`]
/// and [`crate::BitStampSet`] to measure the representation in isolation.
pub fn color_bgpc_with_set<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    let n = g.n_vertices();
    let colors = Colors::new(n);
    let w0 = order.to_vec();
    run_speculative_bgpc::<F, I>(
        g,
        order,
        colors,
        w0,
        g.max_net_size() + 64,
        schedule,
        pool,
        opts,
    )
}

/// The speculative color-then-repair loop over an explicit starting
/// state: a (possibly pre-seeded) color array and an initial work queue.
///
/// `color_bgpc_with_set` calls this with an all-[`UNCOLORED`] array and
/// `w0 == order`; [`crate::incremental`] seeds `colors` from a previous
/// run and restricts `w0` to the dirty vertices. Either way `order` must
/// cover every vertex — it is the repair order for degraded runs and the
/// rebuild set for net-based conflict phases, both of which may need to
/// requeue vertices outside `w0`.
///
/// `capacity` sizes the per-thread forbidden sets; seeded callers must
/// cover the largest base color in addition to the structural bound
/// (the sets grow on demand, so this is a first-allocation hint, not a
/// correctness requirement).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_speculative_bgpc<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    order: &[u32],
    colors: Colors,
    w0: Vec<u32>,
    capacity: usize,
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    let n = g.n_vertices();
    debug_assert_eq!(order.len(), n, "order must cover every vertex");
    let mut scratch: ThreadScratch<ThreadCtx<F, I>> = ThreadScratch::new(pool.threads(), |_| {
        ThreadCtx::new(capacity)
    });
    // Balancer cursors and queues are per-run state: reset defensively so
    // the run is reproducible even if the scratch construction above is
    // ever hoisted out and reused across calls (see ThreadCtx docs).
    for ctx in scratch.iter_mut() {
        ctx.reset_for_run();
        ctx.set_kernel(schedule.kernel);
    }
    // Eager shared queue, only allocated when the schedule needs it.
    let eager_queue = (!schedule.lazy_queue).then(|| SharedQueue::new(n));

    // The online tuner refines a working copy between iterations;
    // `schedule` itself stays the caller's requested configuration.
    let mut live = schedule.clone();
    let mut tuner_actions = Vec::new();

    let mut w: Vec<u32> = w0;
    let mut iterations = Vec::new();
    let mut degraded: Option<DegradeReason> = None;
    let rec = pool.tracer();
    let start = Instant::now();

    let mut iter = 0usize;
    while !w.is_empty() {
        if opts.expired() {
            // Deadline/cancellation: stop speculating and repair the
            // best-so-far partial state into a valid, complete coloring.
            // The repair is sequential but touches only what the finished
            // iterations left dirty, so a late trip costs little.
            degraded = Some(DegradeReason::DeadlineExceeded { iter });
            let queue_in = w.len();
            traced_repair(g, order, &colors, rec, iter);
            w.clear();
            iterations.push(IterationMetrics {
                iter,
                queue_in,
                color_kind: PhaseKind::Vertex,
                conflict_kind: PhaseKind::Vertex,
                color_time: start.elapsed(),
                conflict_time: Duration::ZERO,
                queue_out: 0,
                per_thread: Vec::new(),
            });
            break;
        }
        if iter >= opts.max_iterations {
            // Liveness fallback: sequentially color what's left. The
            // remaining queue holds losers whose stale colors the next
            // coloring phase would have overwritten, so repair first.
            degraded = Some(DegradeReason::IterationCap {
                cap: opts.max_iterations,
            });
            let queue_in = w.len();
            traced_repair(g, order, &colors, rec, iter);
            w.clear();
            iterations.push(IterationMetrics {
                iter,
                queue_in,
                color_kind: PhaseKind::Vertex,
                conflict_kind: PhaseKind::Vertex,
                color_time: start.elapsed(),
                conflict_time: Duration::ZERO,
                queue_out: 0,
                per_thread: Vec::new(),
            });
            break;
        }

        let queue_in = w.len();
        let color_kind = live.color_kind(iter);
        let conflict_kind = live.conflict_kind(iter);

        // Counter snapshots bracket each phase so the per-iteration
        // `ThreadIterStats` are exact deltas of the monotonic sheets; the
        // runner itself executes on team member 0 between regions, which
        // is the reader side of the recorder's partitioning contract.
        let snap_start = rec.map(|r| r.snapshot_counters());
        let color_start_ns = rec.map(|r| r.now_ns());
        let t_color = Instant::now();
        let color_outcome = par::contain(|| match color_kind {
            PhaseKind::Vertex => vertex::color_workqueue_vertex(
                g,
                &w,
                &colors,
                pool,
                live.chunk,
                live.sched,
                live.balance,
                &scratch,
            ),
            PhaseKind::Net => net::color_workqueue_net(
                g,
                &colors,
                pool,
                live.sched,
                live.net_variant,
                live.balance,
                &scratch,
            ),
        });
        let color_time = t_color.elapsed();
        if let (Some(r), Some(ts)) = (rec, color_start_ns) {
            r.record_span(
                0,
                trace::SpanKind::Color,
                iter as u32,
                ts,
                r.now_ns().saturating_sub(ts),
            );
        }
        let snap_color = rec.map(|r| r.snapshot_counters());

        if let Err(fault) = color_outcome {
            degraded = Some(DegradeReason::WorkerPanic {
                phase: FailedPhase::Color,
                iter,
                message: fault.first_message(),
            });
            traced_repair(g, order, &colors, rec, iter);
            w.clear();
            iterations.push(IterationMetrics {
                iter,
                queue_in,
                color_kind,
                conflict_kind,
                color_time,
                conflict_time: Duration::ZERO,
                queue_out: 0,
                per_thread: Vec::new(),
            });
            break;
        }

        let conflict_start_ns = rec.map(|r| r.now_ns());
        let t_conflict = Instant::now();
        let conflict_outcome = par::contain(|| match conflict_kind {
            PhaseKind::Vertex => vertex::remove_conflicts_vertex(
                g,
                &w,
                &colors,
                pool,
                live.chunk,
                live.sched,
                eager_queue.as_ref(),
                &mut scratch,
            ),
            PhaseKind::Net => {
                net::remove_conflicts_net(g, &colors, pool, live.sched, &scratch);
                net::collect_uncolored(order, &colors, pool, &mut scratch)
            }
        });
        let conflict_time = t_conflict.elapsed();
        if let (Some(r), Some(ts)) = (rec, conflict_start_ns) {
            r.record_span(
                0,
                trace::SpanKind::Conflict,
                iter as u32,
                ts,
                r.now_ns().saturating_sub(ts),
            );
        }

        let wnext = match conflict_outcome {
            Ok(wnext) => wnext,
            Err(fault) => {
                degraded = Some(DegradeReason::WorkerPanic {
                    phase: FailedPhase::Conflict,
                    iter,
                    message: fault.first_message(),
                });
                traced_repair(g, order, &colors, rec, iter);
                w.clear();
                iterations.push(IterationMetrics {
                    iter,
                    queue_in,
                    color_kind,
                    conflict_kind,
                    color_time,
                    conflict_time,
                    queue_out: 0,
                    per_thread: Vec::new(),
                });
                break;
            }
        };

        // A dropped eager-queue entry is a conflict loser that will never
        // be recolored — left alone, the loop would terminate with that
        // stale, conflicting color in place. Surface the overflow as an
        // explicit degraded run and repair sequentially, exactly like a
        // contained fault.
        if let Some(q) = eager_queue.as_ref() {
            if q.has_overflowed() {
                degraded = Some(DegradeReason::QueueOverflow {
                    iter,
                    dropped: q.dropped(),
                });
                traced_repair(g, order, &colors, rec, iter);
                iterations.push(IterationMetrics {
                    iter,
                    queue_in,
                    color_kind,
                    conflict_kind,
                    color_time,
                    conflict_time,
                    queue_out: 0,
                    per_thread: Vec::new(),
                });
                break;
            }
        }

        let per_thread = per_thread_slices(&snap_start, &snap_color, rec);
        if trace::COMPILED && conflict_kind == PhaseKind::Vertex && !per_thread.is_empty() {
            // Trace/queue invariant: the vertex-based conflict phase pushes
            // each loser exactly once, so the merged per-thread conflict
            // counts must equal |W_next|. (Net-based phases rebuild the
            // queue from *all* uncolored vertices, which can include
            // vertices the net coloring never reached — no equality there.)
            let counted: u64 = per_thread
                .iter()
                .map(|t| t.conflict.get(trace::Counter::ConflictsDetected))
                .sum();
            debug_assert_eq!(
                counted,
                wnext.len() as u64,
                "per-thread conflict counts disagree with queue size"
            );
        }

        iterations.push(IterationMetrics {
            iter,
            queue_in,
            color_kind,
            conflict_kind,
            color_time,
            conflict_time,
            queue_out: wnext.len(),
            per_thread,
        });
        if let Some(tuner) = &opts.online {
            let m = iterations.last().expect("metrics just pushed");
            tuner_actions.extend(tuner.refine(&mut live, m, pool.threads()));
        }
        w = wnext;
        iter += 1;
    }

    let colors = colors.snapshot();
    let num_colors = count_distinct_colors(&colors);
    ColoringResult {
        colors,
        num_colors,
        iterations,
        total_time: start.elapsed(),
        degraded,
        tuner_actions,
    }
}

/// Builds the per-iteration thread slices from the phase-bracketing
/// counter snapshots: `color = mid − start`, `conflict = now − mid`.
/// Returns an empty vec when tracing is off. Shared with the D2GC driver,
/// which brackets its phases the same way.
pub(crate) fn per_thread_slices(
    snap_start: &Option<Vec<trace::CounterSheet>>,
    snap_color: &Option<Vec<trace::CounterSheet>>,
    rec: Option<&trace::Recorder>,
) -> Vec<ThreadIterStats> {
    match (snap_start, snap_color, rec) {
        (Some(start), Some(mid), Some(r)) => {
            let end = r.snapshot_counters();
            mid.iter()
                .enumerate()
                .map(|(tid, m)| ThreadIterStats {
                    tid,
                    color: m.delta(&start[tid]),
                    conflict: end[tid].delta(m),
                })
                .collect()
        }
        _ => Vec::new(),
    }
}

/// [`repair_sequential`] wrapped in a [`trace::SpanKind::Repair`] span so
/// degraded runs are visible (and attributable) in the trace timeline.
fn traced_repair<I: CsrIndex>(
    g: &BipartiteGraph<I>,
    order: &[u32],
    colors: &Colors,
    rec: Option<&trace::Recorder>,
    iter: usize,
) {
    let ts = rec.map(|r| r.now_ns());
    repair_sequential(g, order, colors);
    if let (Some(r), Some(ts)) = (rec, ts) {
        r.record_span(
            0,
            trace::SpanKind::Repair,
            iter as u32,
            ts,
            r.now_ns().saturating_sub(ts),
        );
    }
}

/// Colors `w` sequentially with first-fit against the *current* state —
/// conflict-free by construction.
fn sequential_fallback<I: CsrIndex>(g: &BipartiteGraph<I>, w: &[u32], colors: &Colors) {
    let mut fb = crate::BitStampSet::with_capacity(g.max_net_size() + 64);
    for &wv in w {
        let wu = wv as usize;
        fb.advance();
        for &v in g.nets(wu) {
            for &u in g.vtxs(v as usize) {
                if u != wv {
                    let cu = colors.get(u as usize);
                    if cu != crate::UNCOLORED {
                        fb.insert(cu);
                    }
                }
            }
        }
        colors.set(wu, fb.first_fit_from(0));
    }
}

/// Repairs an arbitrary partial — possibly conflicting — coloring into a
/// valid, complete one, sequentially.
///
/// A contained fault leaves the color array in an unspecified state: some
/// vertices uncolored, some holding stale colors that conflict within a
/// net. The repair keeps the first holder of each color per net, uncolors
/// every later duplicate, then first-fit colors all uncolored vertices in
/// `order`. Each recolored vertex avoids every color currently visible in
/// its distance-2 neighborhood, so the final coloring is valid regardless
/// of which writes the faulted phase completed.
fn repair_sequential<I: CsrIndex>(g: &BipartiteGraph<I>, order: &[u32], colors: &Colors) {
    let n = g.n_vertices();
    let mut max_c: crate::Color = -1;
    for u in 0..n {
        max_c = max_c.max(colors.get(u));
    }
    let width = (max_c + 1) as usize + 1;
    let mut stamp = vec![usize::MAX; width];
    let mut holder = vec![0u32; width];
    for v in 0..g.n_nets() {
        for &u in g.vtxs(v) {
            let c = colors.get(u as usize);
            if c == UNCOLORED {
                continue;
            }
            let ci = c as usize;
            if stamp[ci] == v && holder[ci] != u {
                colors.set(u as usize, UNCOLORED);
            } else {
                stamp[ci] = v;
                holder[ci] = u;
            }
        }
    }
    let uncolored: Vec<u32> = order
        .iter()
        .copied()
        .filter(|&u| colors.get(u as usize) == UNCOLORED)
        .collect();
    sequential_fallback(g, &uncolored, colors);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_bgpc;
    use crate::Balance;
    use graph::Ordering;

    fn medium_instance() -> BipartiteGraph {
        BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(80, 120, 1500, 7))
    }

    #[test]
    fn every_schedule_produces_valid_coloring_single_thread() {
        let g = medium_instance();
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(1);
        for schedule in Schedule::all() {
            let r = color_bgpc(&g, &order, &schedule, &pool);
            verify_bgpc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{}: {e}", schedule.name()));
            assert!(r.num_colors >= g.max_net_size(), "{}", schedule.name());
        }
    }

    #[test]
    fn every_schedule_produces_valid_coloring_parallel() {
        let g = medium_instance();
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(4);
        for schedule in Schedule::all() {
            let r = color_bgpc(&g, &order, &schedule, &pool);
            verify_bgpc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{}: {e}", schedule.name()));
        }
    }

    #[test]
    fn balanced_schedules_valid_parallel() {
        let g = medium_instance();
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(4);
        for base in [Schedule::v_n(2), Schedule::n1_n2()] {
            for balance in [Balance::B1, Balance::B2] {
                let schedule = base.clone().with_balance(balance);
                let r = color_bgpc(&g, &order, &schedule, &pool);
                verify_bgpc(&g, &r.colors)
                    .unwrap_or_else(|e| panic!("{}: {e}", schedule.name()));
            }
        }
    }

    #[test]
    fn single_thread_vv_matches_sequential_baseline() {
        let g = medium_instance();
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(1);
        let r = color_bgpc(&g, &order, &Schedule::v_v(), &pool);
        let (seq_colors, seq_k) = crate::seq::color_bgpc_seq(&g, &order);
        assert_eq!(r.colors, seq_colors, "1-thread V-V must equal sequential");
        assert_eq!(r.num_colors, seq_k);
        assert_eq!(r.rounds(), 1, "no conflicts possible with one thread");
        assert_eq!(r.remaining_after_first(), 0);
    }

    #[test]
    fn metrics_record_phase_kinds() {
        let g = medium_instance();
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(2);
        let r = color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
        assert_eq!(r.iterations[0].color_kind, PhaseKind::Net);
        assert_eq!(r.iterations[0].conflict_kind, PhaseKind::Net);
        if r.rounds() > 2 {
            assert_eq!(r.iterations[2].color_kind, PhaseKind::Vertex);
            assert_eq!(r.iterations[2].conflict_kind, PhaseKind::Vertex);
        }
        assert_eq!(r.iterations[0].queue_in, g.n_vertices());
    }

    #[test]
    fn empty_graph_returns_immediately() {
        let g = BipartiteGraph::from_matrix(&sparse::Csr::empty(0, 0));
        let pool = Pool::new(2);
        let r = color_bgpc(&g, &[], &Schedule::v_v_64d(), &pool);
        assert!(r.colors.is_empty());
        assert_eq!(r.num_colors, 0);
        assert_eq!(r.rounds(), 0);
    }

    #[test]
    fn reordered_input_still_valid() {
        let g = medium_instance();
        let pool = Pool::new(3);
        for ord in [
            Ordering::Random(11),
            Ordering::LargestFirst,
            Ordering::SmallestLast,
        ] {
            let order = ord.vertex_order_bgpc(&g);
            let r = color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
            verify_bgpc(&g, &r.colors).unwrap();
        }
    }

    #[test]
    fn smallest_last_uses_no_more_colors_than_natural_seq() {
        // Not guaranteed in general, but holds for this fixed instance —
        // and it is the paper's entire reason to evaluate SL ordering.
        let g = medium_instance();
        let natural = Ordering::Natural.vertex_order_bgpc(&g);
        let sl = Ordering::SmallestLast.vertex_order_bgpc(&g);
        let (_, k_nat) = crate::seq::color_bgpc_seq(&g, &natural);
        let (_, k_sl) = crate::seq::color_bgpc_seq(&g, &sl);
        assert!(
            k_sl <= k_nat + 1,
            "smallest-last regressed badly: {k_sl} vs natural {k_nat}"
        );
    }
}
