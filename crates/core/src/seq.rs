//! Sequential greedy baselines (Table II's "Sequential BGPC" columns).
//!
//! One thread, one pass, first-fit: no speculation, no conflicts, no
//! conflict-removal phase. These are the denominators of every speedup the
//! paper reports.

use graph::{BipartiteGraph, Graph};
use sparse::CsrIndex;

use crate::forbidden::ForbiddenSet;
use crate::metrics::count_distinct_colors;
use crate::{BitStampSet, Color, StampSet, UNCOLORED};

/// Net-size/degree cutoff for the forbidden-set representation, matching
/// the parallel runners: giant neighborhoods are insert-dominated, where
/// the stamp array's single-store insert beats the bitmap.
const DENSE_THRESHOLD: usize = 128;

/// Sequential first-fit BGPC over `order`. Returns the coloring and the
/// number of distinct colors.
pub fn color_bgpc_seq<I: CsrIndex>(g: &BipartiteGraph<I>, order: &[u32]) -> (Vec<Color>, usize) {
    if g.max_net_size() > DENSE_THRESHOLD {
        color_bgpc_seq_with_set::<StampSet, I>(g, order)
    } else {
        color_bgpc_seq_with_set::<BitStampSet, I>(g, order)
    }
}

/// [`color_bgpc_seq`] generic over the forbidden-set representation.
pub fn color_bgpc_seq_with_set<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    order: &[u32],
) -> (Vec<Color>, usize) {
    let mut colors = vec![UNCOLORED; g.n_vertices()];
    let mut fb = F::with_capacity(g.max_net_size().max(16));
    for (k, &w) in order.iter().enumerate() {
        if let Some(&next) = order.get(k + crate::vertex::PREFETCH_AHEAD) {
            g.prefetch_nets(next as usize);
        }
        let wu = w as usize;
        fb.advance();
        for &v in g.nets(wu) {
            for &u in g.vtxs(v as usize) {
                if u != w {
                    let cu = colors[u as usize];
                    if cu != UNCOLORED {
                        fb.insert(cu);
                    }
                }
            }
        }
        colors[wu] = fb.first_fit_from(0);
    }
    let k = count_distinct_colors(&colors);
    (colors, k)
}

/// Sequential first-fit D2GC over `order`.
pub fn color_d2gc_seq<I: CsrIndex>(g: &Graph<I>, order: &[u32]) -> (Vec<Color>, usize) {
    if g.max_degree() > DENSE_THRESHOLD {
        color_d2gc_seq_with_set::<StampSet, I>(g, order)
    } else {
        color_d2gc_seq_with_set::<BitStampSet, I>(g, order)
    }
}

/// [`color_d2gc_seq`] generic over the forbidden-set representation.
pub fn color_d2gc_seq_with_set<F: ForbiddenSet, I: CsrIndex>(
    g: &Graph<I>,
    order: &[u32],
) -> (Vec<Color>, usize) {
    let mut colors = vec![UNCOLORED; g.n_vertices()];
    let mut fb = F::with_capacity(g.max_degree() + 16);
    for (k, &w) in order.iter().enumerate() {
        if let Some(&next) = order.get(k + crate::vertex::PREFETCH_AHEAD) {
            g.prefetch_nbor(next as usize);
        }
        let wu = w as usize;
        fb.advance();
        for &u in g.nbor(wu) {
            let cu = colors[u as usize];
            if cu != UNCOLORED {
                fb.insert(cu);
            }
            for &x in g.nbor(u as usize) {
                if x != w {
                    let cx = colors[x as usize];
                    if cx != UNCOLORED {
                        fb.insert(cx);
                    }
                }
            }
        }
        colors[wu] = fb.first_fit_from(0);
    }
    let k = count_distinct_colors(&colors);
    (colors, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_bgpc, verify_d2gc};
    use graph::Ordering;
    use sparse::Csr;

    #[test]
    fn bgpc_single_net_uses_exactly_lower_bound() {
        let g = BipartiteGraph::from_matrix(&Csr::from_rows(4, &[vec![0, 1, 2, 3]]));
        let order: Vec<u32> = (0..4).collect();
        let (colors, k) = color_bgpc_seq(&g, &order);
        verify_bgpc(&g, &colors).unwrap();
        assert_eq!(k, 4);
        assert_eq!(colors, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bgpc_disjoint_nets_reuse_colors() {
        let g = BipartiteGraph::from_matrix(&Csr::from_rows(4, &[vec![0, 1], vec![2, 3]]));
        let (colors, k) = color_bgpc_seq(&g, &[0, 1, 2, 3]);
        verify_bgpc(&g, &colors).unwrap();
        assert_eq!(k, 2);
    }

    #[test]
    fn bgpc_respects_order() {
        let g = BipartiteGraph::from_matrix(&Csr::from_rows(2, &[vec![0, 1]]));
        let (c_fwd, _) = color_bgpc_seq(&g, &[0, 1]);
        let (c_rev, _) = color_bgpc_seq(&g, &[1, 0]);
        assert_eq!(c_fwd, vec![0, 1]);
        assert_eq!(c_rev, vec![1, 0]);
    }

    #[test]
    fn bgpc_on_random_instance_is_valid_and_near_bound() {
        let m = sparse::gen::bipartite_uniform(30, 40, 300, 5);
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let (colors, k) = color_bgpc_seq(&g, &order);
        verify_bgpc(&g, &colors).unwrap();
        assert!(k >= g.max_net_size());
    }

    #[test]
    fn d2gc_path_uses_three_colors() {
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            5,
            &[vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]],
        ));
        let (colors, k) = color_d2gc_seq(&g, &[0, 1, 2, 3, 4]);
        verify_d2gc(&g, &colors).unwrap();
        assert_eq!(k, 3, "a path needs exactly 3 colors at distance 2");
    }

    #[test]
    fn d2gc_star_needs_n_colors() {
        // star: center 0 with 4 leaves; all leaves pairwise at distance 2.
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            5,
            &[vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]],
        ));
        let (colors, k) = color_d2gc_seq(&g, &[0, 1, 2, 3, 4]);
        verify_d2gc(&g, &colors).unwrap();
        assert_eq!(k, 5);
    }

    #[test]
    fn d2gc_on_random_instance_valid_with_bound() {
        let m = sparse::gen::erdos_renyi(50, 120, 9);
        let g = Graph::from_symmetric_matrix(&m);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let (colors, k) = color_d2gc_seq(&g, &order);
        verify_d2gc(&g, &colors).unwrap();
        assert!(k > g.max_degree());
    }
}
