//! Analytical work models for the coloring phases (paper §III).
//!
//! The paper's core complexity argument is quantitative:
//!
//! * a vertex-based pass over work queue `W` touches
//!   `Σ_{w ∈ W} Σ_{v ∈ nets(w)} |vtxs(v)|` pins — `Θ(Σ_v |vtxs(v)|²)`
//!   when `W = V_A`;
//! * a net-based pass always touches `|V_B| + Σ_v |vtxs(v)|` pins —
//!   linear in the graph size.
//!
//! This module computes those quantities exactly for a given graph and
//! queue, so benches can check that *measured* phase-time ratios track the
//! *predicted* work ratios (the first-iteration dominance of Figure 1 is
//! a direct corollary of `work_ratio_first_iteration`).

use graph::{BipartiteGraph, Graph};

/// Pin traversals of one vertex-based phase over queue `w` (coloring and
/// conflict detection have the same bound; early termination can only
/// lower it).
pub fn vertex_phase_work(g: &BipartiteGraph, w: &[u32]) -> u64 {
    w.iter()
        .map(|&u| {
            g.nets(u as usize)
                .iter()
                .map(|&v| g.net_size(v as usize) as u64)
                .sum::<u64>()
        })
        .sum()
}

/// Pin traversals of one net-based phase (always the full graph).
pub fn net_phase_work(g: &BipartiteGraph) -> u64 {
    g.n_nets() as u64 + g.n_pins() as u64
}

/// `Σ_v |vtxs(v)|²` — the tight first-iteration bound for vertex-based
/// phases (paper §III).
pub fn sum_net_size_squared(g: &BipartiteGraph) -> u64 {
    (0..g.n_nets())
        .map(|v| {
            let s = g.net_size(v) as u64;
            s * s
        })
        .sum()
}

/// Predicted work ratio vertex/net for the first iteration — how much a
/// net-based first iteration should win by, in the infinite-bandwidth
/// model.
pub fn work_ratio_first_iteration(g: &BipartiteGraph) -> f64 {
    let net = net_phase_work(g);
    if net == 0 {
        return 1.0;
    }
    sum_net_size_squared(g) as f64 / net as f64
}

/// Distance-2 analogue: pin traversals of one vertex-based D2GC phase
/// over queue `w` (`Σ_{u ∈ w} Σ_{v ∈ nbor(u)} (1 + |nbor(v)|)`).
pub fn vertex_phase_work_d2(g: &Graph, w: &[u32]) -> u64 {
    w.iter()
        .map(|&u| {
            g.nbor(u as usize)
                .iter()
                .map(|&v| 1 + g.degree(v as usize) as u64)
                .sum::<u64>()
        })
        .sum()
}

/// Net-based D2GC phase work: every vertex plus its adjacency once.
pub fn net_phase_work_d2(g: &Graph) -> u64 {
    g.n_vertices() as u64 + 2 * g.n_edges() as u64
}

/// Per-vertex task sizes of a vertex-based phase (distance-2 work per
/// vertex) — the task-size distribution a manycore mapping would see.
pub fn task_sizes_vertex(g: &BipartiteGraph) -> Vec<u64> {
    (0..g.n_vertices())
        .map(|u| {
            g.nets(u)
                .iter()
                .map(|&v| g.net_size(v as usize) as u64)
                .sum()
        })
        .collect()
}

/// Per-net task sizes of a net-based phase (pin-list length per net).
pub fn task_sizes_net(g: &BipartiteGraph) -> Vec<u64> {
    (0..g.n_nets()).map(|v| g.net_size(v) as u64).collect()
}

/// Coefficient of variation (σ/μ) of a task-size distribution — the
/// paper's §VIII observation: "the task sizes in the vertex-based
/// approach … deviate much more compared to that of the net-based
/// approach, which can be a comfort while parallelizing … on manycore
/// architectures."
pub fn coefficient_of_variation(sizes: &[u64]) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    let n = sizes.len() as f64;
    let mean = sizes.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = sizes
        .iter()
        .map(|&s| {
            let d = s as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// SIMT lockstep efficiency: tasks are mapped to warps of `width` lanes
/// in order; each warp runs for `max(task)` cycles while doing
/// `Σ task` useful cycles. Returns useful/total in `(0, 1]` — 1 means
/// perfectly uniform tasks.
pub fn warp_efficiency(sizes: &[u64], width: usize) -> f64 {
    assert!(width >= 1);
    if sizes.is_empty() {
        return 1.0;
    }
    let mut useful = 0u64;
    let mut total = 0u64;
    for warp in sizes.chunks(width) {
        let max = *warp.iter().max().unwrap();
        useful += warp.iter().sum::<u64>();
        total += max * width as u64;
    }
    if total == 0 {
        1.0
    } else {
        useful as f64 / total as f64
    }
}

/// Fraction of total speculative work spent in the first `k` iterations,
/// from recorded per-iteration metrics (the paper: "78% of the runtime is
/// observed to be used on the first iteration … 89% for the first two").
pub fn time_fraction_first_k(result: &crate::ColoringResult, k: usize) -> f64 {
    let total: f64 = result
        .iterations
        .iter()
        .map(|m| (m.color_time + m.conflict_time).as_secs_f64())
        .sum();
    if total == 0.0 {
        return 1.0;
    }
    let first: f64 = result
        .iterations
        .iter()
        .take(k)
        .map(|m| (m.color_time + m.conflict_time).as_secs_f64())
        .sum();
    first / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Csr;

    fn tiny() -> BipartiteGraph {
        // nets {0,1,2}, {2,3}
        BipartiteGraph::from_matrix(&Csr::from_rows(4, &[vec![0, 1, 2], vec![2, 3]]))
    }

    #[test]
    fn vertex_work_counts_pins_with_multiplicity() {
        let g = tiny();
        // full queue: vertex 0: net0 (3); 1: 3; 2: nets 0+1 (3+2=5); 3: 2
        assert_eq!(vertex_phase_work(&g, &[0, 1, 2, 3]), 3 + 3 + 5 + 2);
        // subqueue
        assert_eq!(vertex_phase_work(&g, &[2]), 5);
        assert_eq!(vertex_phase_work(&g, &[]), 0);
    }

    #[test]
    fn net_work_is_linear_in_graph() {
        let g = tiny();
        assert_eq!(net_phase_work(&g), 2 + 5);
    }

    #[test]
    fn sum_squares_matches_full_queue_vertex_work() {
        // Σ|vtxs|² equals vertex-phase work over the full vertex set.
        let g = tiny();
        assert_eq!(sum_net_size_squared(&g), 9 + 4);
        assert_eq!(
            sum_net_size_squared(&g),
            vertex_phase_work(&g, &[0, 1, 2, 3])
        );
        let m = sparse::gen::bipartite_uniform(20, 30, 200, 3);
        let g = BipartiteGraph::from_matrix(&m);
        let full: Vec<u32> = (0..30).collect();
        assert_eq!(sum_net_size_squared(&g), vertex_phase_work(&g, &full));
    }

    #[test]
    fn work_ratio_grows_with_net_size() {
        // one giant net: ratio ≈ net size
        let m = Csr::from_rows(100, &[(0..100).collect()]);
        let g = BipartiteGraph::from_matrix(&m);
        let ratio = work_ratio_first_iteration(&g);
        assert!(ratio > 50.0, "ratio {ratio}");
        // many singleton nets: ratio < 1 (net pass pays per-net overhead)
        let m = Csr::from_rows(50, &(0..50).map(|i| vec![i as u32]).collect::<Vec<_>>());
        let g = BipartiteGraph::from_matrix(&m);
        assert!(work_ratio_first_iteration(&g) <= 1.0);
    }

    #[test]
    fn d2_work_models() {
        // path 0-1-2
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            3,
            &[vec![1], vec![0, 2], vec![1]],
        ));
        // u=0: v=1 → 1+2 = 3; u=1: v=0 →1+1, v=2 →1+1 = 4; u=2: 3
        assert_eq!(vertex_phase_work_d2(&g, &[0, 1, 2]), 10);
        assert_eq!(net_phase_work_d2(&g), 3 + 4);
    }

    #[test]
    fn cv_of_uniform_and_skewed_distributions() {
        assert_eq!(coefficient_of_variation(&[5, 5, 5, 5]), 0.0);
        assert!(coefficient_of_variation(&[1, 1, 1, 100]) > 1.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0, 0]), 0.0);
    }

    #[test]
    fn warp_efficiency_bounds() {
        // uniform tasks: perfect efficiency at any width
        assert_eq!(warp_efficiency(&[4, 4, 4, 4], 2), 1.0);
        // one giant task per warp wastes the other lanes
        let eff = warp_efficiency(&[100, 1, 1, 1], 4);
        assert!(eff < 0.3, "eff {eff}");
        // width 1 is always perfect
        assert_eq!(warp_efficiency(&[100, 1, 7], 1), 1.0);
        assert_eq!(warp_efficiency(&[], 32), 1.0);
    }

    #[test]
    fn net_tasks_are_more_uniform_on_mesh_inputs() {
        // §VIII: the net-based task-size distribution deviates less than
        // the vertex-based one — the manycore argument, quantified. It
        // holds on the paper's mesh-dominated workloads (each vertex task
        // sums ~deg net sizes, amplifying boundary variation), …
        let m = sparse::gen::grid3d_jittered(12, 12, 12, 0.12, 3);
        let g = BipartiteGraph::from_matrix(&m);
        let cv_vertex = coefficient_of_variation(&task_sizes_vertex(&g));
        let cv_net = coefficient_of_variation(&task_sizes_net(&g));
        assert!(
            cv_net < cv_vertex,
            "net tasks should be more uniform: net {cv_net:.2} vs vertex {cv_vertex:.2}"
        );
        let eff_vertex = warp_efficiency(&task_sizes_vertex(&g), 32);
        let eff_net = warp_efficiency(&task_sizes_net(&g), 32);
        assert!(
            eff_net > eff_vertex,
            "net {eff_net:.2} should beat vertex {eff_vertex:.2}"
        );
    }

    #[test]
    fn giant_net_instances_invert_the_manycore_claim() {
        // … but NOT on rating matrices: the blockbuster nets make the
        // net-side distribution far more skewed than the vertex side,
        // where every user's task is dominated by the same blockbusters.
        // (An honest boundary of the paper's §VIII intuition.)
        let m = sparse::gen::bipartite_skewed(300, 4000, 30_000, 0.95, 2000, 5);
        let g = BipartiteGraph::from_matrix(&m);
        let cv_vertex = coefficient_of_variation(&task_sizes_vertex(&g));
        let cv_net = coefficient_of_variation(&task_sizes_net(&g));
        assert!(
            cv_net > cv_vertex,
            "giant nets should dominate net-side CV: net {cv_net:.2} vs vertex {cv_vertex:.2}"
        );
    }

    #[test]
    fn first_iteration_dominates_measured_time() {
        use crate::Schedule;
        use graph::Ordering;
        let m = sparse::gen::chung_lu(2000, 40_000, 2.3, 300, true, 3);
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = par::Pool::new(4);
        let r = crate::color_bgpc(&g, &order, &Schedule::v_v_64d(), &pool);
        let frac = time_fraction_first_k(&r, 1);
        // The paper reports 78% on average; be generous but directional.
        assert!(
            frac > 0.5,
            "first iteration should dominate, got {frac:.2} over {} rounds",
            r.rounds()
        );
        assert!(time_fraction_first_k(&r, r.rounds()) > 0.999);
    }
}
