//! Structured errors for the coloring entry points.
//!
//! The runners themselves never fail — faults degrade to the sequential
//! fallback (see [`crate::metrics::DegradeReason`]) — so this type covers
//! the *input* contract: untrusted patterns, malformed processing orders,
//! and the verification of finished colorings. The CLI maps each variant
//! to a distinct exit code.

use std::fmt;

use graph::GraphError;

/// Why a coloring request was rejected or its result found invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColoringError {
    /// The input pattern was rejected during graph construction.
    Graph(GraphError),
    /// The processing order does not cover the vertex set exactly once.
    OrderMismatch {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A finished coloring failed verification — an internal invariant
    /// violation, never expected in a correct build.
    InvalidColoring(String),
}

impl fmt::Display for ColoringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringError::Graph(e) => write!(f, "graph construction failed: {e}"),
            ColoringError::OrderMismatch { detail } => {
                write!(f, "invalid processing order: {detail}")
            }
            ColoringError::InvalidColoring(detail) => {
                write!(f, "coloring failed verification: {detail}")
            }
        }
    }
}

impl std::error::Error for ColoringError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColoringError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ColoringError {
    fn from(e: GraphError) -> Self {
        ColoringError::Graph(e)
    }
}

/// Checks that `order` is a permutation of `0..n`.
pub(crate) fn validate_order(order: &[u32], n: usize) -> Result<(), ColoringError> {
    if order.len() != n {
        return Err(ColoringError::OrderMismatch {
            detail: format!("order has {} entries for {n} vertices", order.len()),
        });
    }
    let mut seen = vec![false; n];
    for &v in order {
        let vi = v as usize;
        if vi >= n {
            return Err(ColoringError::OrderMismatch {
                detail: format!("order contains vertex id {v} >= {n}"),
            });
        }
        if seen[vi] {
            return Err(ColoringError::OrderMismatch {
                detail: format!("order lists vertex {v} twice"),
            });
        }
        seen[vi] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_permutation_passes() {
        validate_order(&[2, 0, 1], 3).unwrap();
        validate_order(&[], 0).unwrap();
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = validate_order(&[0, 1], 3).unwrap_err();
        assert!(matches!(err, ColoringError::OrderMismatch { .. }));
        assert!(err.to_string().contains("2 entries for 3 vertices"));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = validate_order(&[0, 7], 2).unwrap_err();
        assert!(err.to_string().contains("id 7"));
    }

    #[test]
    fn duplicate_rejected() {
        let err = validate_order(&[0, 0, 1], 3).unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn graph_error_converts() {
        let e: ColoringError = graph::GraphError::NotSymmetric.into();
        assert!(matches!(e, ColoringError::Graph(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
