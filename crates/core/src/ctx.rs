//! Per-thread workspace shared by all phases.

use crate::balance::BalancerState;
use crate::StampSet;

/// One team thread's reusable buffers.
///
/// Allocated once per coloring run and reused across every parallel region
/// (the paper's "allocated only once … never actually emptied or reset"
/// implementation note): the forbidden set is stamp-marked, the queues are
/// cleared by resetting their length.
pub struct ThreadCtx {
    /// Forbidden-color stamp set `F`.
    pub fb: StampSet,
    /// B1/B2 cursors (`colmax`, `colnext`).
    pub balancer: BalancerState,
    /// Lazy (64D) conflict queue for this thread.
    pub local_queue: Vec<u32>,
    /// `W_local` — the two-pass net coloring's to-be-colored buffer.
    pub wlocal: Vec<u32>,
}

impl ThreadCtx {
    /// Creates a context sized for colors up to `color_capacity` (the
    /// stamp set grows on demand if exceeded).
    pub fn new(color_capacity: usize) -> Self {
        Self {
            fb: StampSet::with_capacity(color_capacity.max(16)),
            balancer: BalancerState::default(),
            local_queue: Vec::new(),
            wlocal: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sizes_stamp_set() {
        let ctx = ThreadCtx::new(100);
        assert!(ctx.fb.capacity() >= 100);
        let tiny = ThreadCtx::new(0);
        assert!(tiny.fb.capacity() >= 16);
        assert_eq!(tiny.balancer.colmax, 0);
        assert!(tiny.local_queue.is_empty());
        assert!(tiny.wlocal.is_empty());
    }
}
