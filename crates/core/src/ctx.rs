//! Per-thread workspace shared by all phases.

use std::marker::PhantomData;

use sparse::CsrIndex;

use crate::balance::BalancerState;
use crate::color::Color;
use crate::forbidden::{BitStampSet, ForbiddenSet};
use crate::simd::{ActiveKernel, KernelImpl};

/// One team thread's reusable buffers.
///
/// Allocated once per coloring run and reused across every parallel region
/// (the paper's "allocated only once … never actually emptied or reset"
/// implementation note): the forbidden set is stamp-marked, the queues are
/// cleared by resetting their length.
///
/// The forbidden-set representation is a type parameter so kernels can be
/// benchmarked against both [`crate::StampSet`] and the word-packed
/// [`BitStampSet`]; production paths use the default ([`BitStampSet`]).
/// The second parameter ties the workspace to the instance's CSR
/// row-pointer width ([`CsrIndex`]): a scratch set built for a `u32`
/// instance cannot be handed to a `u64` kernel by accident.
pub struct ThreadCtx<F: ForbiddenSet = BitStampSet, I: CsrIndex = u32> {
    /// Forbidden-color set `F`.
    pub fb: F,
    /// B1/B2 cursors (`colmax`, `colnext`).
    pub balancer: BalancerState,
    /// Lazy (64D) conflict queue for this thread.
    pub local_queue: Vec<u32>,
    /// `W_local` — the two-pass net coloring's to-be-colored buffer.
    pub wlocal: Vec<u32>,
    /// Staging buffer for the eager shared queue: conflicts batch here and
    /// flush with one `fetch_add` per [`crate::workqueue::STAGE_CAPACITY`]
    /// entries instead of one per conflict.
    pub stage: Vec<u32>,
    /// Resolved kernel tier for this run (set by the runners from
    /// [`crate::Schedule::kernel`]; defaults to the widest supported ISA).
    pub kernel: ActiveKernel,
    /// Scratch buffer for the net two-pass marking gather: the vector path
    /// batches the pin colors here before marking, instead of one scalar
    /// load per pin.
    pub gather: Vec<Color>,
    /// Zero-sized marker for the instance's index width (see type docs).
    _width: PhantomData<fn() -> I>,
}

impl<F: ForbiddenSet, I: CsrIndex> ThreadCtx<F, I> {
    /// Creates a context sized for colors up to `color_capacity` (the
    /// forbidden set grows on demand if exceeded).
    pub fn new(color_capacity: usize) -> Self {
        Self {
            fb: F::with_capacity(color_capacity.max(16)),
            balancer: BalancerState::default(),
            local_queue: Vec::new(),
            wlocal: Vec::new(),
            stage: Vec::with_capacity(crate::workqueue::STAGE_CAPACITY),
            kernel: KernelImpl::Auto.resolve(),
            gather: Vec::new(),
            _width: PhantomData,
        }
    }

    /// Resolves a kernel request for this workspace: records the active
    /// tier for the traversal kernels and forwards it to the forbidden set
    /// so its first-fit scan picks the matching word-scan path.
    pub fn set_kernel(&mut self, kernel: KernelImpl) {
        self.kernel = kernel.resolve();
        self.fb.set_kernel(kernel);
    }

    /// Resets the per-run state so the workspace can be reused for a
    /// second coloring call — on the same or a different graph — with
    /// results identical to a fresh workspace.
    ///
    /// The forbidden set needs no reset (its stamp protocol makes stale
    /// marks invisible), but the balancer cursors are per-run state (see
    /// [`BalancerState::reset`]) and the queues/stage must not leak
    /// entries from an aborted previous run. The runners call this
    /// defensively at the start of every run; call it yourself when
    /// driving the `vertex`/`net` kernels directly with a long-lived
    /// scratch set.
    pub fn reset_for_run(&mut self) {
        self.balancer.reset();
        self.local_queue.clear();
        self.wlocal.clear();
        self.stage.clear();
        self.gather.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StampSet;

    #[test]
    fn construction_sizes_forbidden_set() {
        let ctx: ThreadCtx = ThreadCtx::new(100);
        assert!(ctx.fb.capacity() >= 100);
        let tiny: ThreadCtx = ThreadCtx::new(0);
        assert!(tiny.fb.capacity() >= 16);
        assert_eq!(tiny.balancer.colmax, 0);
        assert!(tiny.local_queue.is_empty());
        assert!(tiny.wlocal.is_empty());
        assert!(tiny.stage.is_empty());
        assert!(tiny.gather.is_empty());
        assert_eq!(tiny.kernel, KernelImpl::Auto.resolve());
    }

    #[test]
    fn set_kernel_resolves_and_sticks() {
        let mut ctx: ThreadCtx = ThreadCtx::new(32);
        ctx.set_kernel(KernelImpl::Scalar);
        assert_eq!(ctx.kernel, ActiveKernel::Scalar);
        ctx.set_kernel(KernelImpl::Auto);
        assert_eq!(ctx.kernel, KernelImpl::Auto.resolve());
    }

    #[test]
    fn generic_over_set_representation() {
        let ctx: ThreadCtx<StampSet> = ThreadCtx::new(32);
        assert!(ctx.fb.capacity() >= 32);
    }

    #[test]
    fn generic_over_index_width() {
        let ctx: ThreadCtx<StampSet, u64> = ThreadCtx::new(32);
        assert!(ctx.fb.capacity() >= 32);
    }
}
