//! Algorithm schedules — the paper's `X-Y` naming scheme.
//!
//! An algorithm `X-Y` applies `X`-based coloring and `Y`-based conflict
//! removal, where `V` is vertex-based and `N` is net-based; a number after
//! `N` bounds how many initial iterations stay net-based before switching
//! to the vertex-based (64D) variant (paper §VI).
//!
//! ```
//! use bgpc::{PhaseKind, Schedule};
//!
//! // Parse a paper label and inspect which traversal each iteration runs.
//! let s = Schedule::from_name("n1-n2").expect("a Table III label");
//! assert_eq!(s.name(), "N1-N2");
//! assert_eq!(s.color_kind(0), PhaseKind::Net); // first iteration: Alg. 8
//! assert_eq!(s.color_kind(1), PhaseKind::Vertex); // then 64D
//! assert_eq!(s.conflict_kind(1), PhaseKind::Net); // net removal twice
//! assert_eq!(s.conflict_kind(2), PhaseKind::Vertex);
//!
//! // The chunk-scheduling policy is an extra axis on top of the labels.
//! let stealing = Schedule::v_v_64d().with_sched(par::Sched::Stealing);
//! assert_eq!(stealing.name(), "V-V-64D");
//! ```

use crate::net::NetColoringVariant;
use crate::Balance;

/// Which traversal a phase uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Walk `nets(w) → vtxs(v)` from each queued vertex (Algorithms 4/5).
    Vertex,
    /// Walk each net's pin list once (Algorithms 6–8).
    Net,
}

/// A full schedule: phase choices per iteration plus scheduling knobs.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Paper-style base label (`V-V`, `N1-N2`, …).
    pub label: &'static str,
    /// Iterations (from the first) that use net-based *coloring*.
    pub net_color_iters: usize,
    /// Iterations (from the first) that use net-based *conflict removal*
    /// (`usize::MAX` = every iteration, the `V-N∞` configuration).
    pub net_conflict_iters: usize,
    /// Dynamic chunk size for vertex-based parallel loops. `1` matches
    /// OpenMP's `schedule(dynamic)` default used by plain `V-V`; the tuned
    /// variants use 64.
    pub chunk: usize,
    /// `true` = thread-private conflict queues merged after the join (the
    /// `64D` lazy construction); `false` = ColPack's eager shared queue.
    pub lazy_queue: bool,
    /// Cardinality-balancing heuristic applied during coloring.
    pub balance: Balance,
    /// Which net-based coloring algorithm the net iterations run
    /// (schedules default to the two-pass Algorithm 8).
    pub net_variant: NetColoringVariant,
    /// Chunk-scheduling policy of the parallel loops: the shared-cursor
    /// dynamic baseline, or per-worker blocks with work stealing. Not part
    /// of the paper's labels — [`name`](Self::name) is unchanged — so the
    /// benchmark records it as a separate axis.
    pub sched: par::Sched,
    /// Kernel implementation request for the inner loops (scalar spec,
    /// forced SIMD, or runtime auto-detection). Like `sched`, this is an
    /// implementation axis outside the paper's labels; any choice produces
    /// an equally valid coloring.
    pub kernel: crate::simd::KernelImpl,
}

impl Schedule {
    /// `V-V`: ColPack's default — vertex/vertex, chunk 1, eager queue.
    pub fn v_v() -> Self {
        Self::base("V-V", 0, 0, 1, false)
    }

    /// `V-V-64`: `V-V` with dynamic chunk size 64.
    pub fn v_v_64() -> Self {
        Self::base("V-V-64", 0, 0, 64, false)
    }

    /// `V-V-64D`: chunk 64 plus lazy (thread-private) conflict queues.
    pub fn v_v_64d() -> Self {
        Self::base("V-V-64D", 0, 0, 64, true)
    }

    /// `V-N∞`: vertex coloring (64D), net-based conflict removal at every
    /// iteration.
    pub fn v_n_inf() -> Self {
        Self::base("V-N\u{221e}", 0, usize::MAX, 64, true)
    }

    /// `V-N1` / `V-N2`: net-based conflict removal for the first `n`
    /// iterations, then vertex-based (64D).
    pub fn v_n(n: usize) -> Self {
        let label = match n {
            1 => "V-N1",
            2 => "V-N2",
            _ => "V-Nk",
        };
        Self::base(label, 0, n, 64, true)
    }

    /// `N1-N2`: net coloring in the first iteration, net conflict removal
    /// in the first two, then vertex-based (64D).
    pub fn n1_n2() -> Self {
        Self::base("N1-N2", 1, 2, 64, true)
    }

    /// `N2-N2`: net coloring and net conflict removal in the first two
    /// iterations, then vertex-based (64D).
    pub fn n2_n2() -> Self {
        Self::base("N2-N2", 2, 2, 64, true)
    }

    fn base(
        label: &'static str,
        net_color_iters: usize,
        net_conflict_iters: usize,
        chunk: usize,
        lazy_queue: bool,
    ) -> Self {
        Self {
            label,
            net_color_iters,
            net_conflict_iters,
            chunk,
            lazy_queue,
            balance: Balance::Unbalanced,
            net_variant: NetColoringVariant::TwoPassReverse,
            sched: par::Sched::Dynamic,
            kernel: crate::simd::KernelImpl::Auto,
        }
    }

    /// The paper's eight BGPC schedules, in Table III order.
    pub fn all() -> Vec<Schedule> {
        vec![
            Self::v_v(),
            Self::v_v_64(),
            Self::v_v_64d(),
            Self::v_n_inf(),
            Self::v_n(1),
            Self::v_n(2),
            Self::n1_n2(),
            Self::n2_n2(),
        ]
    }

    /// The four schedules the paper carries into the D2GC experiments
    /// (Table V).
    pub fn d2gc_set() -> Vec<Schedule> {
        vec![Self::v_v_64d(), Self::v_n(1), Self::v_n(2), Self::n1_n2()]
    }

    /// Sets the balancing heuristic (builder style).
    pub fn with_balance(mut self, balance: Balance) -> Self {
        self.balance = balance;
        self
    }

    /// Sets the net-coloring variant (builder style; Table I compares
    /// them).
    pub fn with_net_variant(mut self, variant: NetColoringVariant) -> Self {
        self.net_variant = variant;
        self
    }

    /// Sets the chunk-scheduling policy (builder style).
    pub fn with_sched(mut self, sched: par::Sched) -> Self {
        self.sched = sched;
        self
    }

    /// Sets the kernel implementation (builder style). Like
    /// [`with_sched`](Self::with_sched), a separate benchmark axis:
    /// [`name`](Self::name) does not change.
    pub fn with_kernel(mut self, kernel: crate::simd::KernelImpl) -> Self {
        self.kernel = kernel;
        self
    }

    /// Parses a paper-style label, case-insensitively. Accepts `V-N8`
    /// (for "infinity") as `v-ninf`/`v-n∞`; an optional `-B1`/`-B2`
    /// suffix sets the balancing heuristic.
    pub fn from_name(name: &str) -> Option<Schedule> {
        let lower = name.to_ascii_lowercase();
        let (base, balance) = if let Some(stripped) = lower.strip_suffix("-b1") {
            (stripped.to_string(), Balance::B1)
        } else if let Some(stripped) = lower.strip_suffix("-b2") {
            (stripped.to_string(), Balance::B2)
        } else {
            (lower, Balance::Unbalanced)
        };
        let schedule = match base.as_str() {
            "v-v" => Self::v_v(),
            "v-v-64" => Self::v_v_64(),
            "v-v-64d" => Self::v_v_64d(),
            "v-ninf" | "v-n\u{221e}" | "v-n8" => Self::v_n_inf(),
            "v-n1" => Self::v_n(1),
            "v-n2" => Self::v_n(2),
            "n1-n2" => Self::n1_n2(),
            "n2-n2" => Self::n2_n2(),
            _ => return None,
        };
        Some(schedule.with_balance(balance))
    }

    /// Full display name including the balance suffix, e.g. `V-N2-B1`.
    pub fn name(&self) -> String {
        match self.balance {
            Balance::Unbalanced => self.label.to_string(),
            b => format!("{}-{}", self.label, b.label()),
        }
    }

    /// Phase kind used for coloring at `iter` (0-based).
    pub fn color_kind(&self, iter: usize) -> PhaseKind {
        if iter < self.net_color_iters {
            PhaseKind::Net
        } else {
            PhaseKind::Vertex
        }
    }

    /// Phase kind used for conflict removal at `iter` (0-based).
    pub fn conflict_kind(&self, iter: usize) -> PhaseKind {
        if iter < self.net_conflict_iters {
            PhaseKind::Net
        } else {
            PhaseKind::Vertex
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_has_eight() {
        let all = Schedule::all();
        assert_eq!(all.len(), 8);
        let labels: Vec<&str> = all.iter().map(|s| s.label).collect();
        assert_eq!(
            labels,
            vec!["V-V", "V-V-64", "V-V-64D", "V-N\u{221e}", "V-N1", "V-N2", "N1-N2", "N2-N2"]
        );
    }

    #[test]
    fn phase_switching() {
        let s = Schedule::n1_n2();
        assert_eq!(s.color_kind(0), PhaseKind::Net);
        assert_eq!(s.color_kind(1), PhaseKind::Vertex);
        assert_eq!(s.conflict_kind(0), PhaseKind::Net);
        assert_eq!(s.conflict_kind(1), PhaseKind::Net);
        assert_eq!(s.conflict_kind(2), PhaseKind::Vertex);
    }

    #[test]
    fn vn_inf_never_switches_conflict() {
        let s = Schedule::v_n_inf();
        assert_eq!(s.conflict_kind(1_000_000), PhaseKind::Net);
        assert_eq!(s.color_kind(0), PhaseKind::Vertex);
    }

    #[test]
    fn vv_is_all_vertex_chunk1_eager() {
        let s = Schedule::v_v();
        assert_eq!(s.color_kind(0), PhaseKind::Vertex);
        assert_eq!(s.conflict_kind(0), PhaseKind::Vertex);
        assert_eq!(s.chunk, 1);
        assert!(!s.lazy_queue);
    }

    #[test]
    fn names_include_balance_suffix() {
        assert_eq!(Schedule::v_n(2).name(), "V-N2");
        assert_eq!(Schedule::v_n(2).with_balance(Balance::B1).name(), "V-N2-B1");
        assert_eq!(Schedule::n1_n2().with_balance(Balance::B2).name(), "N1-N2-B2");
    }

    #[test]
    fn from_name_roundtrips_all_schedules() {
        for schedule in Schedule::all() {
            let parsed = Schedule::from_name(&schedule.name())
                .unwrap_or_else(|| panic!("cannot parse {}", schedule.name()));
            assert_eq!(parsed.name(), schedule.name());
            assert_eq!(parsed.net_color_iters, schedule.net_color_iters);
            assert_eq!(parsed.net_conflict_iters, schedule.net_conflict_iters);
            assert_eq!(parsed.chunk, schedule.chunk);
            assert_eq!(parsed.lazy_queue, schedule.lazy_queue);
            assert_eq!(parsed.sched, par::Sched::Dynamic, "default policy");
        }
    }

    #[test]
    fn with_sched_does_not_change_the_name() {
        let s = Schedule::v_v_64d().with_sched(par::Sched::Stealing);
        assert_eq!(s.sched, par::Sched::Stealing);
        assert_eq!(s.name(), "V-V-64D", "sched is a separate axis");
    }

    #[test]
    fn with_kernel_does_not_change_the_name() {
        use crate::simd::KernelImpl;
        let s = Schedule::n1_n2().with_kernel(KernelImpl::Scalar);
        assert_eq!(s.kernel, KernelImpl::Scalar);
        assert_eq!(s.name(), "N1-N2", "kernel is a separate axis");
        assert_eq!(Schedule::v_v().kernel, KernelImpl::Auto, "default");
    }

    #[test]
    fn from_name_parses_balance_and_case() {
        let s = Schedule::from_name("n1-n2-b2").unwrap();
        assert_eq!(s.name(), "N1-N2-B2");
        let s = Schedule::from_name("V-NINF").unwrap();
        assert_eq!(s.label, "V-N\u{221e}");
        assert!(Schedule::from_name("bogus").is_none());
    }
}
