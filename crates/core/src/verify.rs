//! Validity oracles and color-set statistics.
//!
//! Every test and benchmark validates colorings through these functions,
//! which are written for clarity (sequential, allocating) rather than
//! speed — they are the ground truth the optimistic algorithms are checked
//! against.

use graph::{BipartiteGraph, Graph};
use sparse::CsrIndex;

use crate::{BitStampSet, Color, UNCOLORED};

/// Checks that `colors` is a complete, valid bipartite partial coloring:
/// every vertex colored, and no two vertices of any net share a color.
pub fn verify_bgpc<I: CsrIndex>(g: &BipartiteGraph<I>, colors: &[Color]) -> Result<(), String> {
    if colors.len() != g.n_vertices() {
        return Err(format!(
            "color array length {} != vertex count {}",
            colors.len(),
            g.n_vertices()
        ));
    }
    for (u, &c) in colors.iter().enumerate() {
        if c == UNCOLORED {
            return Err(format!("vertex {u} is uncolored"));
        }
        if c < 0 {
            return Err(format!("vertex {u} has invalid color {c}"));
        }
    }
    let mut seen = BitStampSet::with_capacity(64);
    for v in 0..g.n_nets() {
        seen.advance();
        for &u in g.vtxs(v) {
            let c = colors[u as usize];
            if seen.contains(c) {
                return Err(format!("net {v}: color {c} repeated (vertex {u})"));
            }
            seen.insert(c);
        }
    }
    Ok(())
}

/// Checks that `colors` is a complete, valid distance-2 coloring: every
/// vertex colored, and for every vertex `v`, the colors of `{v} ∪ nbor(v)`
/// are pairwise distinct (which covers all distance-1 and distance-2
/// pairs).
pub fn verify_d2gc<I: CsrIndex>(g: &Graph<I>, colors: &[Color]) -> Result<(), String> {
    if colors.len() != g.n_vertices() {
        return Err(format!(
            "color array length {} != vertex count {}",
            colors.len(),
            g.n_vertices()
        ));
    }
    for (u, &c) in colors.iter().enumerate() {
        if c < 0 {
            return Err(format!("vertex {u} uncolored or invalid ({c})"));
        }
    }
    let mut seen = BitStampSet::with_capacity(64);
    for v in 0..g.n_vertices() {
        seen.advance();
        seen.insert(colors[v]);
        for &u in g.nbor(v) {
            let c = colors[u as usize];
            if seen.contains(c) {
                return Err(format!(
                    "middle vertex {v}: color {c} repeated in closed neighborhood (vertex {u})"
                ));
            }
            seen.insert(c);
        }
    }
    Ok(())
}

/// Cardinality statistics of the color classes — the balance metrics of
/// Table VI and the distributions of Figure 3.
#[derive(Clone, Debug)]
pub struct ColorClassStats {
    /// Number of non-empty color classes.
    pub num_classes: usize,
    /// Cardinality of each class, indexed by color (may contain zeros for
    /// colors skipped by reverse-fit policies).
    pub cardinalities: Vec<usize>,
    /// Smallest non-empty class size.
    pub min: usize,
    /// Largest class size.
    pub max: usize,
    /// Mean size over non-empty classes.
    pub mean: f64,
    /// Population standard deviation over non-empty classes.
    pub std_dev: f64,
}

impl ColorClassStats {
    /// Computes class statistics from a complete coloring.
    pub fn from_colors(colors: &[Color]) -> Self {
        let max_color = colors.iter().copied().max().unwrap_or(-1);
        let mut cardinalities = vec![0usize; (max_color + 1).max(0) as usize];
        for &c in colors {
            if c >= 0 {
                cardinalities[c as usize] += 1;
            }
        }
        let nonempty: Vec<usize> = cardinalities.iter().copied().filter(|&k| k > 0).collect();
        let num_classes = nonempty.len();
        if num_classes == 0 {
            return Self {
                num_classes: 0,
                cardinalities,
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let min = nonempty.iter().copied().min().unwrap();
        let max = nonempty.iter().copied().max().unwrap();
        let mean = nonempty.iter().sum::<usize>() as f64 / num_classes as f64;
        let var = nonempty
            .iter()
            .map(|&k| {
                let d = k as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / num_classes as f64;
        Self {
            num_classes,
            cardinalities,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Class sizes sorted in non-increasing order (Figure 3's x-axis).
    pub fn sorted_cardinalities(&self) -> Vec<usize> {
        let mut sorted: Vec<usize> = self
            .cardinalities
            .iter()
            .copied()
            .filter(|&k| k > 0)
            .collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        sorted
    }

    /// Normalized Shannon entropy of the class-size distribution in
    /// `[0, 1]`: 1 means perfectly equitable classes, 0 means everything
    /// in one class. A scale-free companion to the standard deviation for
    /// comparing B1/B2 across instances of different sizes.
    pub fn entropy(&self) -> f64 {
        let total: usize = self.cardinalities.iter().sum();
        if total == 0 || self.num_classes <= 1 {
            return if self.num_classes == 1 { 0.0 } else { 1.0 };
        }
        let h: f64 = self
            .cardinalities
            .iter()
            .filter(|&&k| k > 0)
            .map(|&k| {
                let p = k as f64 / total as f64;
                -p * p.ln()
            })
            .sum();
        h / (self.num_classes as f64).ln()
    }

    /// Gini coefficient of the class sizes in `[0, 1)`: 0 is perfectly
    /// balanced, higher is more skewed.
    pub fn gini(&self) -> f64 {
        let mut sizes: Vec<usize> = self
            .cardinalities
            .iter()
            .copied()
            .filter(|&k| k > 0)
            .collect();
        if sizes.len() <= 1 {
            return 0.0;
        }
        sizes.sort_unstable();
        let n = sizes.len() as f64;
        let total: usize = sizes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = sizes
            .iter()
            .enumerate()
            .map(|(i, &k)| (i as f64 + 1.0) * k as f64)
            .sum();
        (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
    }

    /// Number of classes smaller than `threshold` — the paper's concern
    /// about "thousands of color sets with less than 2 elements".
    pub fn classes_below(&self, threshold: usize) -> usize {
        self.cardinalities
            .iter()
            .filter(|&&k| k > 0 && k < threshold)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Csr;

    fn tiny_bgpc() -> BipartiteGraph {
        BipartiteGraph::from_matrix(&Csr::from_rows(3, &[vec![0, 1], vec![1, 2]]))
    }

    #[test]
    fn valid_bgpc_accepted() {
        let g = tiny_bgpc();
        verify_bgpc(&g, &[0, 1, 0]).unwrap();
    }

    #[test]
    fn bgpc_conflict_detected() {
        let g = tiny_bgpc();
        let err = verify_bgpc(&g, &[0, 0, 1]).unwrap_err();
        assert!(err.contains("net 0"), "{err}");
    }

    #[test]
    fn bgpc_uncolored_detected() {
        let g = tiny_bgpc();
        assert!(verify_bgpc(&g, &[0, -1, 1]).is_err());
        assert!(verify_bgpc(&g, &[0, 1]).is_err());
    }

    #[test]
    fn valid_d2gc_accepted() {
        // path 0-1-2: all three pairwise within distance 2.
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            3,
            &[vec![1], vec![0, 2], vec![1]],
        ));
        verify_d2gc(&g, &[0, 1, 2]).unwrap();
        assert!(verify_d2gc(&g, &[0, 1, 0]).is_err(), "distance-2 pair");
        assert!(verify_d2gc(&g, &[0, 0, 1]).is_err(), "distance-1 pair");
    }

    #[test]
    fn d2gc_distance3_may_share() {
        // path 0-1-2-3: vertices 0 and 3 are distance 3 apart.
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            4,
            &[vec![1], vec![0, 2], vec![1, 3], vec![2]],
        ));
        verify_d2gc(&g, &[0, 1, 2, 0]).unwrap();
    }

    #[test]
    fn class_stats() {
        let stats = ColorClassStats::from_colors(&[0, 0, 0, 1, 2, 2]);
        assert_eq!(stats.num_classes, 3);
        assert_eq!(stats.cardinalities, vec![3, 1, 2]);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 3);
        assert!((stats.mean - 2.0).abs() < 1e-12);
        assert_eq!(stats.sorted_cardinalities(), vec![3, 2, 1]);
    }

    #[test]
    fn class_stats_with_gaps() {
        // color 1 unused (reverse fit can skip colors)
        let stats = ColorClassStats::from_colors(&[0, 2, 2]);
        assert_eq!(stats.num_classes, 2);
        assert_eq!(stats.cardinalities, vec![1, 0, 2]);
    }

    #[test]
    fn class_stats_empty() {
        let stats = ColorClassStats::from_colors(&[]);
        assert_eq!(stats.num_classes, 0);
        assert_eq!(stats.std_dev, 0.0);
    }

    #[test]
    fn entropy_of_equitable_coloring_is_one() {
        let stats = ColorClassStats::from_colors(&[0, 0, 1, 1, 2, 2]);
        assert!((stats.entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_decreases_with_skew() {
        let balanced = ColorClassStats::from_colors(&[0, 0, 0, 1, 1, 1]);
        let skewed = ColorClassStats::from_colors(&[0, 0, 0, 0, 0, 1]);
        assert!(skewed.entropy() < balanced.entropy());
        let single = ColorClassStats::from_colors(&[0, 0, 0]);
        assert_eq!(single.entropy(), 0.0);
    }

    #[test]
    fn gini_bounds_and_monotonicity() {
        let equal = ColorClassStats::from_colors(&[0, 0, 1, 1, 2, 2]);
        assert!(equal.gini().abs() < 1e-12);
        let skewed = ColorClassStats::from_colors(&[0, 0, 0, 0, 0, 1, 2]);
        assert!(skewed.gini() > 0.3, "gini {}", skewed.gini());
        assert!(skewed.gini() < 1.0);
        let single = ColorClassStats::from_colors(&[0, 0]);
        assert_eq!(single.gini(), 0.0);
    }

    #[test]
    fn classes_below_counts_small_sets() {
        let stats = ColorClassStats::from_colors(&[0, 0, 0, 1, 2, 2]);
        assert_eq!(stats.classes_below(2), 1); // class 1 has one member
        assert_eq!(stats.classes_below(3), 2);
        assert_eq!(stats.classes_below(100), 3);
    }
}
