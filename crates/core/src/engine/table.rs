//! The fitted decision table: a plain-text list of exemplar points and
//! per-problem defaults, matched by nearest neighbor in log-feature
//! space.
//!
//! ## Format
//!
//! One entry per line; `#` starts a comment. Two entry kinds:
//!
//! ```text
//! default <problem> schedule=<S> sched=<dynamic|steal> width=<auto|u32|u64>
//!         relabel=<none|degree|bfs> kernel=<auto|scalar|simd> forbidden=<auto|stamp|bitstamp>
//! point <problem> tag=<label> n=<int> nets=<int> nnz=<int> maxdeg=<int> maxnet=<int>
//!       avgdeg=<float> cv=<float> density=<float> -> schedule=<S> sched=... (same keys)
//! ```
//!
//! A `point` is one fitted exemplar: the feature vector of a swept
//! instance plus the config that minimized its runtime in the sweep
//! (`scripts/fit_engine.sh` regenerates them from `BENCH_coloring.json`).
//! Selection picks the nearest point of the right problem; with no
//! points, the problem's `default` row applies. Ties keep the earliest
//! entry, so selection is a pure function of (instance, table).

use par::Sched;
use sparse::{IndexWidth, LocalityOrder};

use crate::engine::{ForbiddenKind, InstanceFeatures, ProblemKind};
use crate::simd::KernelImpl;
use crate::Schedule;

/// A config as written in the table: `auto` axes stay unresolved here and
/// are resolved against instance features at selection time.
#[derive(Clone, Debug)]
pub struct ConfigSpec {
    /// Schedule (label + balance; `sched`/`kernel` fields are overridden
    /// by the axes below).
    pub schedule: Schedule,
    /// Chunk-scheduling policy.
    pub sched: Sched,
    /// Row-pointer width; `None` = pick by nonzero count.
    pub width: Option<IndexWidth>,
    /// Locality relabeling.
    pub relabel: LocalityOrder,
    /// Forbidden-set kernel request.
    pub kernel: KernelImpl,
    /// Forbidden-set representation; `None` = pick by neighborhood size.
    pub forbidden: Option<ForbiddenKind>,
}

impl ConfigSpec {
    /// Renders the spec in table syntax (the exact form the table parser
    /// reads back) — shared with `fit_engine` so there is one format.
    pub fn render(&self) -> String {
        format!(
            "schedule={} sched={} width={} relabel={} kernel={} forbidden={}",
            self.schedule.name(),
            self.sched.label(),
            self.width.map_or("auto", |w| w.label()),
            self.relabel.label(),
            self.kernel.label(),
            self.forbidden.map_or("auto", |f| f.label()),
        )
    }
}

/// One fitted exemplar row.
#[derive(Clone, Debug)]
pub struct TablePoint {
    /// Which problem the exemplar was measured on.
    pub problem: ProblemKind,
    /// Human-readable provenance (dataset name), echoed in
    /// [`crate::engine::EngineChoice::matched`].
    pub tag: String,
    /// Feature vector of the measured instance.
    pub features: InstanceFeatures,
    /// The config that won the sweep for this instance.
    pub spec: ConfigSpec,
}

impl TablePoint {
    /// Renders the point in table syntax.
    pub fn render(&self) -> String {
        let f = &self.features;
        format!(
            "point {} tag={} n={} nets={} nnz={} maxdeg={} maxnet={} \
             avgdeg={:.4} cv={:.4} density={:.6e} -> {}",
            self.problem.label(),
            self.tag,
            f.n,
            f.nets,
            f.nnz,
            f.max_degree,
            f.max_net,
            f.avg_degree,
            f.degree_cv,
            f.density,
            self.spec.render(),
        )
    }
}

/// A parsed decision table.
#[derive(Clone, Debug)]
pub struct EngineTable {
    /// Fitted exemplars, in file order (earliest wins distance ties).
    pub points: Vec<TablePoint>,
    /// Fallback config per problem, used when no point of that problem
    /// exists (degenerate instances always use the default).
    pub default_bgpc: ConfigSpec,
    pub default_d2gc: ConfigSpec,
}

/// Renders a `default` row in table syntax.
pub fn render_default(problem: ProblemKind, spec: &ConfigSpec) -> String {
    format!("default {} {}", problem.label(), spec.render())
}

fn kv<'a>(tok: &'a str, key: &str) -> Option<&'a str> {
    tok.strip_prefix(key).and_then(|r| r.strip_prefix('='))
}

fn parse_spec(toks: &[&str], line_no: usize) -> Result<ConfigSpec, String> {
    let mut schedule: Option<Schedule> = None;
    let mut sched: Option<Sched> = None;
    let mut width: Option<Option<IndexWidth>> = None;
    let mut relabel: Option<LocalityOrder> = None;
    let mut kernel: Option<KernelImpl> = None;
    let mut forbidden: Option<Option<ForbiddenKind>> = None;
    for tok in toks {
        if let Some(v) = kv(tok, "schedule") {
            schedule =
                Some(Schedule::from_name(v).ok_or_else(|| {
                    format!("line {line_no}: unknown schedule `{v}`")
                })?);
        } else if let Some(v) = kv(tok, "sched") {
            sched = Some(
                Sched::from_name(v)
                    .ok_or_else(|| format!("line {line_no}: unknown sched `{v}`"))?,
            );
        } else if let Some(v) = kv(tok, "width") {
            width = Some(if v.eq_ignore_ascii_case("auto") {
                None
            } else {
                Some(IndexWidth::from_name(v).ok_or_else(|| {
                    format!("line {line_no}: unknown width `{v}`")
                })?)
            });
        } else if let Some(v) = kv(tok, "relabel") {
            relabel = Some(LocalityOrder::from_name(v).ok_or_else(|| {
                format!("line {line_no}: unknown relabel `{v}`")
            })?);
        } else if let Some(v) = kv(tok, "kernel") {
            kernel = Some(KernelImpl::from_name(v).ok_or_else(|| {
                format!("line {line_no}: unknown kernel `{v}`")
            })?);
        } else if let Some(v) = kv(tok, "forbidden") {
            forbidden = Some(if v.eq_ignore_ascii_case("auto") {
                None
            } else {
                Some(ForbiddenKind::from_name(v).ok_or_else(|| {
                    format!("line {line_no}: unknown forbidden `{v}`")
                })?)
            });
        } else {
            return Err(format!("line {line_no}: unknown config key `{tok}`"));
        }
    }
    Ok(ConfigSpec {
        schedule: schedule
            .ok_or_else(|| format!("line {line_no}: config misses schedule="))?,
        sched: sched.ok_or_else(|| format!("line {line_no}: config misses sched="))?,
        width: width.ok_or_else(|| format!("line {line_no}: config misses width="))?,
        relabel: relabel
            .ok_or_else(|| format!("line {line_no}: config misses relabel="))?,
        kernel: kernel.ok_or_else(|| format!("line {line_no}: config misses kernel="))?,
        forbidden: forbidden
            .ok_or_else(|| format!("line {line_no}: config misses forbidden="))?,
    })
}

fn parse_usize(toks: &[&str], key: &str, line_no: usize) -> Result<usize, String> {
    let v = toks
        .iter()
        .find_map(|t| kv(t, key))
        .ok_or_else(|| format!("line {line_no}: point misses {key}="))?;
    v.parse()
        .map_err(|e| format!("line {line_no}: bad {key}=`{v}`: {e}"))
}

fn parse_f64(toks: &[&str], key: &str, line_no: usize) -> Result<f64, String> {
    let v = toks
        .iter()
        .find_map(|t| kv(t, key))
        .ok_or_else(|| format!("line {line_no}: point misses {key}="))?;
    let x: f64 = v
        .parse()
        .map_err(|e| format!("line {line_no}: bad {key}=`{v}`: {e}"))?;
    if !x.is_finite() {
        return Err(format!("line {line_no}: non-finite {key}=`{v}`"));
    }
    Ok(x)
}

impl EngineTable {
    /// Parses a table from its text form. Every row is validated eagerly:
    /// a typo anywhere fails the whole parse with the line number, so a
    /// broken checked-in table cannot half-load.
    pub fn parse(text: &str) -> Result<EngineTable, String> {
        let mut points = Vec::new();
        let mut default_bgpc: Option<ConfigSpec> = None;
        let mut default_d2gc: Option<ConfigSpec> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "default" => {
                    let problem = toks
                        .get(1)
                        .and_then(|p| ProblemKind::from_name(p))
                        .ok_or_else(|| {
                            format!("line {line_no}: default needs a problem (bgpc|d2gc)")
                        })?;
                    let spec = parse_spec(&toks[2..], line_no)?;
                    match problem {
                        ProblemKind::Bgpc => default_bgpc = Some(spec),
                        ProblemKind::D2gc => default_d2gc = Some(spec),
                    }
                }
                "point" => {
                    let problem = toks
                        .get(1)
                        .and_then(|p| ProblemKind::from_name(p))
                        .ok_or_else(|| {
                            format!("line {line_no}: point needs a problem (bgpc|d2gc)")
                        })?;
                    let arrow = toks.iter().position(|&t| t == "->").ok_or_else(|| {
                        format!("line {line_no}: point misses the `->` separator")
                    })?;
                    let feat_toks = &toks[2..arrow];
                    let tag = feat_toks
                        .iter()
                        .find_map(|t| kv(t, "tag"))
                        .unwrap_or("unnamed")
                        .to_string();
                    let features = InstanceFeatures {
                        problem,
                        n: parse_usize(feat_toks, "n", line_no)?,
                        nets: parse_usize(feat_toks, "nets", line_no)?,
                        nnz: parse_usize(feat_toks, "nnz", line_no)?,
                        max_degree: parse_usize(feat_toks, "maxdeg", line_no)?,
                        max_net: parse_usize(feat_toks, "maxnet", line_no)?,
                        avg_degree: parse_f64(feat_toks, "avgdeg", line_no)?,
                        degree_cv: parse_f64(feat_toks, "cv", line_no)?,
                        density: parse_f64(feat_toks, "density", line_no)?,
                    };
                    let spec = parse_spec(&toks[arrow + 1..], line_no)?;
                    points.push(TablePoint {
                        problem,
                        tag,
                        features,
                        spec,
                    });
                }
                other => {
                    return Err(format!(
                        "line {line_no}: unknown entry kind `{other}` (point|default)"
                    ))
                }
            }
        }
        Ok(EngineTable {
            points,
            default_bgpc: default_bgpc
                .ok_or("table misses the `default bgpc` row".to_string())?,
            default_d2gc: default_d2gc
                .ok_or("table misses the `default d2gc` row".to_string())?,
        })
    }

    /// Nearest point of `problem` to `f` in log-feature space; `None`
    /// when the table has no point for that problem. Strict `<` keeps the
    /// earliest entry on exact ties, making selection deterministic.
    pub fn nearest(&self, f: &InstanceFeatures) -> Option<&TablePoint> {
        let target = f.feature_vector();
        let mut best: Option<(&TablePoint, f64)> = None;
        for p in &self.points {
            if p.problem != f.problem {
                continue;
            }
            let d = dist2(&target, &p.features.feature_vector());
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((p, d));
            }
        }
        best.map(|(p, _)| p)
    }

    /// The problem's fallback config row.
    pub fn default_for(&self, problem: ProblemKind) -> &ConfigSpec {
        match problem {
            ProblemKind::Bgpc => &self.default_bgpc,
            ProblemKind::D2gc => &self.default_d2gc,
        }
    }
}

fn dist2(a: &[f64; 6], b: &[f64; 6]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
# comment line
default bgpc schedule=N1-N2 sched=dynamic width=auto relabel=none kernel=auto forbidden=auto
default d2gc schedule=V-V-64D sched=dynamic width=auto relabel=none kernel=auto forbidden=auto
point bgpc tag=tiny n=10 nets=12 nnz=40 maxdeg=5 maxnet=6 avgdeg=4.0 cv=0.3 density=0.33 \
 -> schedule=V-V-64D sched=steal width=u32 relabel=degree kernel=simd forbidden=bitstamp
";

    #[test]
    fn parse_roundtrips_through_render() {
        let t = EngineTable::parse(MINIMAL).unwrap();
        assert_eq!(t.points.len(), 1);
        let rendered = format!(
            "{}\n{}\n{}\n",
            render_default(ProblemKind::Bgpc, &t.default_bgpc),
            render_default(ProblemKind::D2gc, &t.default_d2gc),
            t.points[0].render()
        );
        let t2 = EngineTable::parse(&rendered).unwrap();
        assert_eq!(t2.points.len(), 1);
        assert_eq!(t2.points[0].tag, "tiny");
        assert_eq!(t2.points[0].spec.render(), t.points[0].spec.render());
        assert_eq!(t2.default_bgpc.render(), t.default_bgpc.render());
    }

    #[test]
    fn parse_rejects_typos_with_line_numbers() {
        for (bad, needle) in [
            ("default bgpc schedule=ZZZ sched=dynamic width=auto relabel=none kernel=auto forbidden=auto", "unknown schedule"),
            ("bogus bgpc", "unknown entry kind"),
            ("point bgpc n=1 -> schedule=V-V sched=dynamic width=auto relabel=none kernel=auto forbidden=auto", "misses nets="),
            ("point bgpc tag=x n=1 nets=1 nnz=1 maxdeg=1 maxnet=1 avgdeg=1 cv=0 density=1 schedule=V-V", "misses the `->`"),
        ] {
            let err = EngineTable::parse(bad).unwrap_err();
            assert!(err.contains(needle), "`{bad}` -> {err}");
            assert!(err.contains("line 1") || err.contains("misses the `default"), "{err}");
        }
        // A table without defaults is rejected even if points parse.
        let err = EngineTable::parse("").unwrap_err();
        assert!(err.contains("default bgpc"), "{err}");
    }

    #[test]
    fn nearest_is_deterministic_and_problem_scoped() {
        let t = EngineTable::parse(MINIMAL).unwrap();
        let f = InstanceFeatures {
            problem: ProblemKind::Bgpc,
            n: 11,
            nets: 12,
            nnz: 44,
            max_degree: 5,
            max_net: 6,
            avg_degree: 4.0,
            degree_cv: 0.3,
            density: 0.33,
        };
        let p = t.nearest(&f).unwrap();
        assert_eq!(p.tag, "tiny");
        // No D2GC points: nearest is None, default applies.
        let fd = InstanceFeatures {
            problem: ProblemKind::D2gc,
            ..f
        };
        assert!(t.nearest(&fd).is_none());
    }
}
