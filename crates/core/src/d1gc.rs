//! Distance-1 graph coloring — the background problem (paper §II).
//!
//! D1GC is where the speculative color/detect/repair framework
//! (Algorithms 1–3) was born; the paper generalizes it to BGPC and D2GC.
//! Provided here both for completeness and because it is the cheapest
//! sanity check of the framework: a sequential pass needs `Δ + 1` colors
//! at most, and the parallel variant must converge to a coloring that a
//! distance-1 verifier accepts.

use graph::Graph;
use par::{Pool, ThreadScratch};

use crate::ctx::ThreadCtx;
use crate::metrics::count_distinct_colors;
use crate::workqueue::merge_local_queues;
use crate::{Balance, BitStampSet, Color, Colors, UNCOLORED};

/// Sequential greedy first-fit D1GC. Uses at most `Δ + 1` colors.
pub fn color_d1gc_seq(g: &Graph, order: &[u32]) -> (Vec<Color>, usize) {
    let mut colors = vec![UNCOLORED; g.n_vertices()];
    let mut fb = BitStampSet::with_capacity(g.max_degree() + 1);
    for &w in order {
        let wu = w as usize;
        fb.advance();
        for &u in g.nbor(wu) {
            let cu = colors[u as usize];
            if cu != UNCOLORED {
                fb.insert(cu);
            }
        }
        colors[wu] = fb.first_fit_from(0);
    }
    let k = count_distinct_colors(&colors);
    (colors, k)
}

/// Parallel speculative D1GC (Algorithms 1–3 verbatim): optimistic
/// coloring, then id-ordered conflict detection, iterated to fixpoint.
pub fn color_d1gc(
    g: &Graph,
    order: &[u32],
    pool: &Pool,
    chunk: usize,
    balance: Balance,
) -> (Vec<Color>, usize) {
    let n = g.n_vertices();
    let colors = Colors::new(n);
    let mut scratch =
        ThreadScratch::new(pool.threads(), |_| ThreadCtx::new(g.max_degree() + 16));
    let mut w: Vec<u32> = order.to_vec();
    let mut guard = 0usize;
    while !w.is_empty() {
        // Color the queue.
        let scratch_ref: &ThreadScratch<ThreadCtx> = &scratch;
        pool.for_dynamic(w.len(), chunk, |tid, range| {
            scratch_ref.with(tid, |ctx| {
                for &wv in &w[range] {
                    let wu = wv as usize;
                    ctx.fb.advance();
                    for &u in g.nbor(wu) {
                        let cu = colors.get(u as usize);
                        if cu != UNCOLORED {
                            ctx.fb.insert(cu);
                        }
                    }
                    let col = balance.pick(wv, &ctx.fb, &mut ctx.balancer);
                    colors.set(wu, col);
                }
            });
        });
        // Detect conflicts: larger id loses.
        pool.for_dynamic(w.len(), chunk, |tid, range| {
            scratch_ref.with(tid, |ctx| {
                for &wv in &w[range] {
                    let wu = wv as usize;
                    let cw = colors.get(wu);
                    for &u in g.nbor(wu) {
                        if u < wv && colors.get(u as usize) == cw {
                            ctx.local_queue.push(wv);
                            break;
                        }
                    }
                }
            });
        });
        w = merge_local_queues(&mut scratch);
        guard += 1;
        assert!(guard <= 256, "D1GC failed to converge");
    }
    let colors = colors.snapshot();
    let k = count_distinct_colors(&colors);
    (colors, k)
}

/// Checks distance-1 validity: adjacent vertices differ, all colored.
pub fn verify_d1gc(g: &Graph, colors: &[Color]) -> Result<(), String> {
    if colors.len() != g.n_vertices() {
        return Err("color array length mismatch".into());
    }
    for (u, &c) in colors.iter().enumerate() {
        if c < 0 {
            return Err(format!("vertex {u} uncolored"));
        }
        for &v in g.nbor(u) {
            if colors[v as usize] == c {
                return Err(format!("edge ({u}, {v}) monochromatic with color {c}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::Ordering;
    use sparse::Csr;

    fn petersen_like() -> Graph {
        Graph::from_symmetric_matrix(&sparse::gen::erdos_renyi(40, 100, 77))
    }

    #[test]
    fn sequential_within_delta_plus_one() {
        let g = petersen_like();
        let order = Ordering::Natural.vertex_order_d2(&g);
        let (colors, k) = color_d1gc_seq(&g, &order);
        verify_d1gc(&g, &colors).unwrap();
        assert!(k <= g.max_degree() + 1, "greedy bound violated: {k}");
    }

    #[test]
    fn parallel_matches_validity_and_bound_single_thread() {
        let g = petersen_like();
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(1);
        let (colors, k) = color_d1gc(&g, &order, &pool, 16, Balance::Unbalanced);
        let (seq_colors, seq_k) = color_d1gc_seq(&g, &order);
        assert_eq!(colors, seq_colors, "1 thread == sequential");
        assert_eq!(k, seq_k);
    }

    #[test]
    fn parallel_converges_multithreaded() {
        let g = petersen_like();
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(4);
        let (colors, k) = color_d1gc(&g, &order, &pool, 4, Balance::Unbalanced);
        verify_d1gc(&g, &colors).unwrap();
        assert!(k >= 2);
    }

    #[test]
    fn balanced_d1gc_valid() {
        let g = petersen_like();
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(3);
        for balance in [Balance::B1, Balance::B2] {
            let (colors, _) = color_d1gc(&g, &order, &pool, 8, balance);
            verify_d1gc(&g, &colors).unwrap();
        }
    }

    #[test]
    fn bipartite_double_star_needs_two_colors() {
        // Two hubs joined by an edge, leaves attached: 2-colorable.
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            6,
            &[
                vec![1, 2, 3],
                vec![0, 4, 5],
                vec![0],
                vec![0],
                vec![1],
                vec![1],
            ],
        ));
        let (colors, k) = color_d1gc_seq(&g, &(0..6).collect::<Vec<u32>>());
        verify_d1gc(&g, &colors).unwrap();
        assert_eq!(k, 2);
    }

    #[test]
    fn verifier_rejects_monochromatic_edge() {
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(2, &[vec![1], vec![0]]));
        assert!(verify_d1gc(&g, &[0, 0]).is_err());
        assert!(verify_d1gc(&g, &[0, 1]).is_ok());
        assert!(verify_d1gc(&g, &[0, -1]).is_err());
    }

    #[test]
    fn d1_uses_fewer_colors_than_d2() {
        let g = Graph::from_symmetric_matrix(&sparse::gen::grid2d(10, 10, 1));
        let order = Ordering::Natural.vertex_order_d2(&g);
        let (_, k1) = color_d1gc_seq(&g, &order);
        let (_, k2) = crate::seq::color_d2gc_seq(&g, &order);
        assert!(k1 < k2, "distance-1 ({k1}) must need fewer than distance-2 ({k2})");
    }
}
