//! Vertex-based BGPC phases (Algorithms 4 and 5) — the ColPack baseline.
//!
//! Both phases walk the distance-2 neighborhood *from the queued vertex*:
//! `nets(w) → vtxs(v)`. In the first iteration this touches every net
//! `|vtxs(v)|` times, so the traversal is `Θ(Σ_v |vtxs(v)|²)` — the cost
//! the net-based phases of [`crate::net`] attack.

use graph::BipartiteGraph;
use par::{Pool, Sched, ThreadScratch};
use sparse::CsrIndex;

use crate::ctx::ThreadCtx;
use crate::forbidden::ForbiddenSet;
use crate::simd;
use crate::workqueue::{merge_local_queues, SharedQueue};
use crate::{Balance, Colors, UNCOLORED};

// Hoisted to the tunable-constant module next to the SIMD dispatch; the
// re-export keeps the historical `vertex::PREFETCH_AHEAD` path working for
// the sequential and D2GC kernels.
pub(crate) use crate::tuning::PREFETCH_AHEAD;

/// Algorithm 4 — optimistic coloring of the work queue `w`, vertex-based.
///
/// Every vertex in `w` is assigned a color chosen by `balance` (first-fit
/// for [`Balance::Unbalanced`]) against the colors currently visible in its
/// distance-2 neighborhood. Races with concurrent writers are expected and
/// repaired by the following conflict-removal phase.
#[allow(clippy::too_many_arguments)] // mirrors the paper kernel's parameter list
pub fn color_workqueue_vertex<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    w: &[u32],
    colors: &Colors,
    pool: &Pool,
    chunk: usize,
    sched: Sched,
    balance: Balance,
    scratch: &ThreadScratch<ThreadCtx<F, I>>,
) {
    let rec = pool.tracer();
    pool.for_sched(sched, w.len(), chunk, |tid, range| {
        par::faults::fire("bgpc.color", tid);
        scratch.with(tid, |ctx| {
            let items = &w[range];
            // Counter sinks live in registers and are flushed once per
            // chunk; with the trace crate's `sink-off` feature the
            // `trace::COMPILED` constant folds them away entirely.
            let mut probes = 0u64;
            let mut prefetches = 0u64;
            let mut vstats = simd::VecStats::default();
            // Resolved once per chunk: whether the vectorized gather path
            // is available (AVX2 tier). Short pin lists stay scalar — the
            // branch itself is the dispatch.
            let vector = ctx.kernel.has_gather();
            for (k, &wv) in items.iter().enumerate() {
                if let Some(&next) = items.get(k + PREFETCH_AHEAD) {
                    g.prefetch_nets(next as usize);
                    if trace::COMPILED {
                        prefetches += 1;
                    }
                }
                let wu = wv as usize;
                ctx.fb.advance();
                let nets = g.nets(wu);
                for (j, &v) in nets.iter().enumerate() {
                    if let Some(&vnext) = nets.get(j + 1) {
                        g.prefetch_vtxs(vnext as usize);
                        if trace::COMPILED {
                            prefetches += 1;
                        }
                    }
                    let pins = g.vtxs(v as usize);
                    if vector && pins.len() >= simd::GATHER_LANES {
                        simd::gather_mark(colors, pins, wv, &mut ctx.fb, &mut vstats);
                    } else {
                        for &u in pins {
                            if u != wv {
                                let cu = colors.get(u as usize);
                                if cu != UNCOLORED {
                                    ctx.fb.insert(cu);
                                    if trace::COMPILED {
                                        probes += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                let col = balance.pick(wv, &ctx.fb, &mut ctx.balancer);
                colors.set(wu, col);
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::VerticesColored, items.len() as u64);
                    local.add(trace::Counter::ForbiddenProbes, probes + vstats.probes);
                    local.add(trace::Counter::PrefetchIssues, prefetches + vstats.prefetches);
                    local.add(trace::Counter::SimdPathHits, vstats.blocks);
                    r.merge(tid, &local);
                }
            }
        });
    });
}

/// Algorithm 5 — vertex-based conflict detection over the work queue.
///
/// For each queued vertex `w`, scans its distance-2 neighborhood; if some
/// neighbor `u` holds the same color and `w > u`, `w` loses and is queued
/// for recoloring (its stale color is left in place, exactly like the
/// original — the next coloring phase overwrites it).
///
/// `eager` selects ColPack's shared-queue construction (staged: one atomic
/// `fetch_add` per 64 conflicts instead of one per conflict); otherwise the
/// 64D lazy strategy collects conflicts in thread-private queues merged
/// after the join. Returns `W_next`.
#[allow(clippy::too_many_arguments)] // mirrors the paper kernel's parameter list
pub fn remove_conflicts_vertex<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    w: &[u32],
    colors: &Colors,
    pool: &Pool,
    chunk: usize,
    sched: Sched,
    eager: Option<&SharedQueue>,
    scratch: &mut ThreadScratch<ThreadCtx<F, I>>,
) -> Vec<u32> {
    let scratch_ref: &ThreadScratch<ThreadCtx<F, I>> = scratch;
    let rec = pool.tracer();
    pool.for_sched(sched, w.len(), chunk, |tid, range| {
        par::faults::fire("bgpc.conflict", tid);
        scratch_ref.with(tid, |ctx| {
            let items = &w[range];
            let mut conflicts = 0u64;
            let mut prefetches = 0u64;
            let mut vstats = simd::VecStats::default();
            let vector = ctx.kernel.has_gather();
            for (k, &wv) in items.iter().enumerate() {
                if let Some(&next) = items.get(k + PREFETCH_AHEAD) {
                    g.prefetch_nets(next as usize);
                    if trace::COMPILED {
                        prefetches += 1;
                    }
                }
                let wu = wv as usize;
                let cw = colors.get(wu);
                debug_assert_ne!(cw, UNCOLORED, "conflict scan on uncolored vertex");
                'detect: for &v in g.nets(wu) {
                    let pins = g.vtxs(v as usize);
                    let hit = if vector && pins.len() >= simd::GATHER_LANES {
                        simd::conflict_in_pins(colors, pins, wv, cw, &mut vstats)
                    } else {
                        pins.iter().any(|&u| u < wv && colors.get(u as usize) == cw)
                    };
                    if hit {
                        match eager {
                            Some(q) => q.push_staged(&mut ctx.stage, wv),
                            None => ctx.local_queue.push(wv),
                        }
                        if trace::COMPILED {
                            conflicts += 1;
                        }
                        break 'detect;
                    }
                }
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::ConflictsDetected, conflicts);
                    local.add(trace::Counter::PrefetchIssues, prefetches + vstats.prefetches);
                    local.add(trace::Counter::SimdPathHits, vstats.blocks);
                    r.merge(tid, &local);
                }
            }
        });
    });
    match eager {
        Some(q) => {
            // Flush each thread's residual stage (outside the region — the
            // join ordered all staged writes before this point).
            for ctx in scratch.iter_mut() {
                q.flush(&mut ctx.stage);
            }
            q.drain_to_vec()
        }
        None => merge_local_queues(scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_bgpc;
    use sparse::Csr;

    fn clique_graph() -> BipartiteGraph {
        // One net containing all 6 vertices: pairwise conflicting.
        BipartiteGraph::from_matrix(&Csr::from_rows(6, &[vec![0, 1, 2, 3, 4, 5]]))
    }

    fn run_until_valid(g: &BipartiteGraph, pool: &Pool, eager: bool, sched: Sched) -> Vec<i32> {
        let n = g.n_vertices();
        let colors = Colors::new(n);
        let mut scratch: ThreadScratch<ThreadCtx> =
            ThreadScratch::new(pool.threads(), |_| ThreadCtx::new(16));
        let shared = SharedQueue::new(n);
        let mut w: Vec<u32> = (0..n as u32).collect();
        let mut guard = 0;
        while !w.is_empty() {
            color_workqueue_vertex(g, &w, &colors, pool, 1, sched, Balance::Unbalanced, &scratch);
            w = remove_conflicts_vertex(
                g,
                &w,
                &colors,
                pool,
                1,
                sched,
                eager.then_some(&shared),
                &mut scratch,
            );
            guard += 1;
            assert!(guard < 100, "no convergence");
        }
        colors.snapshot()
    }

    #[test]
    fn sequential_team_colors_clique_without_conflicts() {
        let g = clique_graph();
        let pool = Pool::new(1);
        // Single thread first-fit on one net: colors are 0..6 in order,
        // whichever chunk scheduler claims the (single-block) range.
        for sched in Sched::all() {
            let colors = run_until_valid(&g, &pool, false, sched);
            verify_bgpc(&g, &colors).unwrap();
            assert_eq!(colors, vec![0, 1, 2, 3, 4, 5], "{sched}");
        }
    }

    #[test]
    fn parallel_team_converges_on_clique_lazy() {
        let g = clique_graph();
        let pool = Pool::new(4);
        for sched in Sched::all() {
            let colors = run_until_valid(&g, &pool, false, sched);
            verify_bgpc(&g, &colors).unwrap();
        }
    }

    #[test]
    fn parallel_team_converges_on_clique_eager() {
        let g = clique_graph();
        let pool = Pool::new(4);
        for sched in Sched::all() {
            let colors = run_until_valid(&g, &pool, true, sched);
            verify_bgpc(&g, &colors).unwrap();
        }
    }

    #[test]
    fn disjoint_nets_need_one_iteration() {
        // nets {0,1}, {2,3}: vertices 0,2 and 1,3 can share colors.
        let g = BipartiteGraph::from_matrix(&Csr::from_rows(4, &[vec![0, 1], vec![2, 3]]));
        let pool = Pool::new(2);
        let colors = Colors::new(4);
        let mut scratch: ThreadScratch<ThreadCtx> =
            ThreadScratch::new(2, |_| ThreadCtx::new(8));
        let w: Vec<u32> = vec![0, 1, 2, 3];
        color_workqueue_vertex(
            &g, &w, &colors, &pool, 1, Sched::Dynamic, Balance::Unbalanced, &scratch,
        );
        let wnext = remove_conflicts_vertex(
            &g, &w, &colors, &pool, 1, Sched::Dynamic, None, &mut scratch,
        );
        // single-net-per-vertex, small graph: any schedule should already
        // be conflict-free or nearly so; loop to completion for safety.
        let mut w = wnext;
        let mut rounds = 0;
        while !w.is_empty() {
            color_workqueue_vertex(
                &g, &w, &colors, &pool, 1, Sched::Dynamic, Balance::Unbalanced, &scratch,
            );
            w = remove_conflicts_vertex(
                &g, &w, &colors, &pool, 1, Sched::Dynamic, None, &mut scratch,
            );
            rounds += 1;
            assert!(rounds < 10);
        }
        verify_bgpc(&g, &colors.snapshot()).unwrap();
    }

    #[test]
    fn loser_is_larger_id() {
        // Force a conflict artificially: both vertices of one net get the
        // same color, then run detection on the full queue.
        let g = BipartiteGraph::from_matrix(&Csr::from_rows(2, &[vec![0, 1]]));
        let pool = Pool::new(1);
        let colors = Colors::new(2);
        colors.set(0, 0);
        colors.set(1, 0);
        let mut scratch: ThreadScratch<ThreadCtx> =
            ThreadScratch::new(1, |_| ThreadCtx::new(4));
        let wnext = remove_conflicts_vertex(
            &g, &[0, 1], &colors, &pool, 1, Sched::Dynamic, None, &mut scratch,
        );
        assert_eq!(wnext, vec![1]);
        // Winner keeps its color; loser's stale color remains until the
        // next coloring phase (paper semantics).
        assert_eq!(colors.get(0), 0);
        assert_eq!(colors.get(1), 0);
    }

    #[test]
    fn balanced_policies_still_yield_valid_colorings() {
        let m = sparse::gen::bipartite_uniform(20, 30, 200, 3);
        let g = BipartiteGraph::from_matrix(&m);
        for balance in [Balance::B1, Balance::B2] {
            let pool = Pool::new(3);
            let colors = Colors::new(g.n_vertices());
            let mut scratch: ThreadScratch<ThreadCtx> =
                ThreadScratch::new(3, |_| ThreadCtx::new(32));
            let mut w: Vec<u32> = (0..g.n_vertices() as u32).collect();
            let mut rounds = 0;
            while !w.is_empty() {
                color_workqueue_vertex(
                    &g, &w, &colors, &pool, 4, Sched::Stealing, balance, &scratch,
                );
                w = remove_conflicts_vertex(
                    &g, &w, &colors, &pool, 4, Sched::Stealing, None, &mut scratch,
                );
                rounds += 1;
                assert!(rounds < 100);
            }
            verify_bgpc(&g, &colors.snapshot()).unwrap();
        }
    }
}
