//! Distance-k graph coloring — the paper's future-work extension (§VIII:
//! "the optimistic techniques for BGPC and D2GC can be extended to the
//! distance-k graph coloring problem").
//!
//! A valid distance-k coloring assigns different colors to every vertex
//! pair within shortest-path distance ≤ k. `k = 1` and `k = 2` coincide
//! with [`crate::d1gc`] and [`crate::d2gc`]; larger `k` appears in channel
//! assignment and multi-level preconditioning.
//!
//! The implementation generalizes the vertex-based speculative scheme: the
//! distance-k neighborhood is enumerated by a bounded BFS using a
//! stamp-marked visited set (same O(1)-reset trick as the forbidden set),
//! and conflicts are detected by re-running the BFS and comparing against
//! smaller-id vertices.

use graph::Graph;
use par::{Pool, ThreadScratch};

use crate::metrics::count_distinct_colors;
use crate::{Balance, BitStampSet, Color, Colors, UNCOLORED};

/// Per-thread workspace for distance-k traversals.
struct DkCtx {
    fb: BitStampSet,
    visited: BitStampSet,
    frontier: Vec<u32>,
    next_frontier: Vec<u32>,
    local_queue: Vec<u32>,
    balancer: crate::balance::BalancerState,
}

impl DkCtx {
    fn new(color_capacity: usize, n: usize) -> Self {
        Self {
            fb: BitStampSet::with_capacity(color_capacity.max(16)),
            visited: BitStampSet::with_capacity(n.max(16)),
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            local_queue: Vec::new(),
            balancer: crate::balance::BalancerState::default(),
        }
    }

    /// Visits every vertex within distance ≤ k of `start` (excluding
    /// `start`), calling `f(v)` once per vertex.
    fn bfs_k(&mut self, g: &Graph, start: u32, k: usize, mut f: impl FnMut(u32)) {
        self.visited.advance();
        self.visited.insert(start as Color);
        self.frontier.clear();
        self.frontier.push(start);
        for _depth in 0..k {
            self.next_frontier.clear();
            // Take the frontier so the scan iterates a slice (no per-element
            // index bound check) while `visited` stays mutably borrowable.
            let frontier = std::mem::take(&mut self.frontier);
            for &u in &frontier {
                for &v in g.nbor(u as usize) {
                    if !self.visited.contains(v as Color) {
                        self.visited.insert(v as Color);
                        f(v);
                        self.next_frontier.push(v);
                    }
                }
            }
            self.frontier = frontier;
            std::mem::swap(&mut self.frontier, &mut self.next_frontier);
            if self.frontier.is_empty() {
                break;
            }
        }
    }
}

/// Sequential greedy first-fit distance-k coloring.
pub fn color_dkgc_seq(g: &Graph, order: &[u32], k: usize) -> (Vec<Color>, usize) {
    assert!(k >= 1, "distance must be at least 1");
    let mut colors = vec![UNCOLORED; g.n_vertices()];
    let mut ctx = DkCtx::new(g.max_degree() + 16, g.n_vertices());
    for &w in order {
        ctx.fb.advance();
        // Split borrows: collect forbidden colors through a raw pointer to
        // `colors` is unnecessary — read after BFS instead.
        let mut nbrs: Vec<u32> = Vec::new();
        ctx.bfs_k(g, w, k, |v| nbrs.push(v));
        for &v in &nbrs {
            let cv = colors[v as usize];
            if cv != UNCOLORED {
                ctx.fb.insert(cv);
            }
        }
        colors[w as usize] = ctx.fb.first_fit_from(0);
    }
    let kk = count_distinct_colors(&colors);
    (colors, kk)
}

/// Parallel speculative distance-k coloring (vertex-based phases only —
/// the natural generalization of `V-V-64D`).
pub fn color_dkgc(
    g: &Graph,
    order: &[u32],
    k: usize,
    pool: &Pool,
    chunk: usize,
    balance: Balance,
) -> (Vec<Color>, usize) {
    assert!(k >= 1, "distance must be at least 1");
    let n = g.n_vertices();
    let colors = Colors::new(n);
    let mut scratch = ThreadScratch::new(pool.threads(), |_| {
        DkCtx::new(g.max_degree() + 16, n)
    });
    let mut w: Vec<u32> = order.to_vec();
    let mut guard = 0usize;
    while !w.is_empty() {
        let scratch_ref: &ThreadScratch<DkCtx> = &scratch;
        // Optimistic coloring.
        pool.for_dynamic(w.len(), chunk, |tid, range| {
            scratch_ref.with(tid, |ctx| {
                let mut nbrs: Vec<u32> = Vec::new();
                for &wv in &w[range] {
                    ctx.fb.advance();
                    nbrs.clear();
                    ctx.bfs_k(g, wv, k, |v| nbrs.push(v));
                    for &v in &nbrs {
                        let cv = colors.get(v as usize);
                        if cv != UNCOLORED {
                            ctx.fb.insert(cv);
                        }
                    }
                    let col = balance.pick(wv, &ctx.fb, &mut ctx.balancer);
                    colors.set(wv as usize, col);
                }
            });
        });
        // Conflict detection: the larger id of a same-colored pair loses.
        pool.for_dynamic(w.len(), chunk, |tid, range| {
            scratch_ref.with(tid, |ctx| {
                let mut nbrs: Vec<u32> = Vec::new();
                for &wv in &w[range] {
                    let cw = colors.get(wv as usize);
                    nbrs.clear();
                    ctx.bfs_k(g, wv, k, |v| nbrs.push(v));
                    if nbrs
                        .iter()
                        .any(|&v| v < wv && colors.get(v as usize) == cw)
                    {
                        ctx.local_queue.push(wv);
                    }
                }
            });
        });
        let mut merged = Vec::new();
        for ctx in scratch.iter_mut() {
            merged.extend_from_slice(&ctx.local_queue);
            ctx.local_queue.clear();
        }
        w = merged;
        guard += 1;
        assert!(guard <= 256, "distance-{k} coloring failed to converge");
    }
    let colors = colors.snapshot();
    let kk = count_distinct_colors(&colors);
    (colors, kk)
}

/// Checks distance-k validity by BFS from every vertex.
pub fn verify_dkgc(g: &Graph, colors: &[Color], k: usize) -> Result<(), String> {
    if colors.len() != g.n_vertices() {
        return Err("color array length mismatch".into());
    }
    let mut ctx = DkCtx::new(16, g.n_vertices());
    for (u, &c) in colors.iter().enumerate() {
        if c < 0 {
            return Err(format!("vertex {u} uncolored"));
        }
        let mut bad = None;
        ctx.bfs_k(g, u as u32, k, |v| {
            if colors[v as usize] == c && bad.is_none() {
                bad = Some(v);
            }
        });
        if let Some(v) = bad {
            return Err(format!(
                "vertices {u} and {v} within distance {k} share color {c}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::Ordering;
    use sparse::Csr;

    fn path(n: usize) -> Graph {
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut r = Vec::new();
                if i > 0 {
                    r.push(i as u32 - 1);
                }
                if i + 1 < n {
                    r.push(i as u32 + 1);
                }
                r
            })
            .collect();
        Graph::from_symmetric_matrix(&Csr::from_rows(n, &rows))
    }

    #[test]
    fn path_needs_k_plus_one_colors() {
        for k in 1..=4 {
            let g = path(20);
            let order: Vec<u32> = (0..20).collect();
            let (colors, used) = color_dkgc_seq(&g, &order, k);
            verify_dkgc(&g, &colors, k).unwrap();
            assert_eq!(used, k + 1, "path at distance {k}");
        }
    }

    #[test]
    fn k1_matches_d1gc_and_k2_matches_d2gc() {
        let g = Graph::from_symmetric_matrix(&sparse::gen::erdos_renyi(40, 90, 8));
        let order = Ordering::Natural.vertex_order_d2(&g);
        let (c1, _) = color_dkgc_seq(&g, &order, 1);
        let (d1, _) = crate::d1gc::color_d1gc_seq(&g, &order);
        assert_eq!(c1, d1, "distance-1 specialization");
        let (c2, _) = color_dkgc_seq(&g, &order, 2);
        let (d2, _) = crate::seq::color_d2gc_seq(&g, &order);
        assert_eq!(c2, d2, "distance-2 specialization");
    }

    #[test]
    fn parallel_converges_and_verifies() {
        let g = Graph::from_symmetric_matrix(&sparse::gen::grid2d(10, 10, 1));
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(4);
        for k in 1..=3 {
            let (colors, _) = color_dkgc(&g, &order, k, &pool, 8, Balance::Unbalanced);
            verify_dkgc(&g, &colors, k).unwrap();
        }
    }

    #[test]
    fn single_thread_parallel_equals_sequential() {
        let g = Graph::from_symmetric_matrix(&sparse::gen::erdos_renyi(30, 60, 2));
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(1);
        let (par_c, _) = color_dkgc(&g, &order, 3, &pool, 16, Balance::Unbalanced);
        let (seq_c, _) = color_dkgc_seq(&g, &order, 3);
        assert_eq!(par_c, seq_c);
    }

    #[test]
    fn colors_grow_with_k() {
        let g = Graph::from_symmetric_matrix(&sparse::gen::grid2d(12, 12, 1));
        let order = Ordering::Natural.vertex_order_d2(&g);
        let mut prev = 0;
        for k in 1..=3 {
            let (_, used) = color_dkgc_seq(&g, &order, k);
            assert!(used >= prev, "colors must not shrink with k");
            prev = used;
        }
        assert!(prev > 9, "distance-3 on a Moore grid needs many colors");
    }

    #[test]
    fn verifier_catches_distance_k_violation() {
        let g = path(4);
        // colors valid at distance 1 but not at distance 2:
        let colors = vec![0, 1, 0, 1];
        assert!(verify_dkgc(&g, &colors, 1).is_ok());
        assert!(verify_dkgc(&g, &colors, 2).is_err());
    }

    #[test]
    fn balanced_distance_k_valid() {
        let g = Graph::from_symmetric_matrix(&sparse::gen::erdos_renyi(50, 120, 4));
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(3);
        for balance in [Balance::B1, Balance::B2] {
            let (colors, _) = color_dkgc(&g, &order, 2, &pool, 8, balance);
            verify_dkgc(&g, &colors, 2).unwrap();
        }
    }
}
