//! Stamp-marked forbidden-color sets.

use crate::Color;

/// A forbidden-color set that is "emptied" in O(1).
///
/// The paper's implementation detail (§III): each thread allocates one
/// array for its forbidden set `F` and never resets it — a monotonically
/// increasing *marker* distinguishes the current net/vertex's entries from
/// stale ones. [`StampSet::advance`] starts a fresh logical set; a color is
/// a member iff its stamp equals the current marker.
///
/// ```
/// use bgpc::StampSet;
/// let mut f = StampSet::with_capacity(8);
/// f.advance();
/// f.insert(0);
/// f.insert(1);
/// assert_eq!(f.first_fit_from(0), 2);
/// f.advance(); // O(1) "reset"
/// assert_eq!(f.first_fit_from(0), 0);
/// ```
pub struct StampSet {
    stamp: Vec<u64>,
    mark: u64,
}

impl StampSet {
    /// Creates a set able to hold colors `0..capacity` without growth.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            stamp: vec![0; capacity],
            mark: 0,
        }
    }

    /// Starts a fresh logical set (O(1); no memory is touched).
    #[inline]
    pub fn advance(&mut self) {
        // u64 markers cannot realistically wrap (2⁶⁴ advances).
        self.mark += 1;
    }

    /// Inserts a color, growing the backing array if needed.
    #[inline]
    pub fn insert(&mut self, color: Color) {
        debug_assert!(color >= 0, "cannot forbid the UNCOLORED sentinel");
        let idx = color as usize;
        if idx >= self.stamp.len() {
            // Doubling keeps growth amortized O(1); colors are bounded by
            // the graph's degree structure so this settles quickly.
            self.stamp.resize((idx + 1).next_power_of_two(), 0);
        }
        self.stamp[idx] = self.mark;
    }

    /// Membership test for the current logical set.
    #[inline]
    pub fn contains(&self, color: Color) -> bool {
        debug_assert!(color >= 0);
        let idx = color as usize;
        idx < self.stamp.len() && self.stamp[idx] == self.mark
    }

    /// Smallest color `≥ from` not in the set (first-fit scan).
    #[inline]
    pub fn first_fit_from(&self, from: Color) -> Color {
        let mut col = from;
        while self.contains(col) {
            col += 1;
        }
        col
    }

    /// Largest color `≤ from` not in the set, or [`crate::UNCOLORED`] if
    /// every color in `0..=from` is forbidden (reverse first-fit scan).
    #[inline]
    pub fn reverse_first_fit_from(&self, from: Color) -> Color {
        let mut col = from;
        while col >= 0 && self.contains(col) {
            col -= 1;
        }
        col
    }

    /// Current capacity (colors storable without growth).
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = StampSet::with_capacity(8);
        s.advance();
        s.insert(3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
    }

    #[test]
    fn advance_empties_in_o1() {
        let mut s = StampSet::with_capacity(4);
        s.advance();
        s.insert(0);
        s.insert(1);
        s.advance();
        assert!(!s.contains(0));
        assert!(!s.contains(1));
    }

    #[test]
    fn grows_on_demand() {
        let mut s = StampSet::with_capacity(2);
        s.advance();
        s.insert(100);
        assert!(s.contains(100));
        assert!(s.capacity() >= 101);
        assert!(!s.contains(50));
    }

    #[test]
    fn contains_beyond_capacity_is_false() {
        let s = StampSet::with_capacity(4);
        assert!(!s.contains(1000));
    }

    #[test]
    fn first_fit_skips_forbidden_prefix() {
        let mut s = StampSet::with_capacity(8);
        s.advance();
        s.insert(0);
        s.insert(1);
        s.insert(3);
        assert_eq!(s.first_fit_from(0), 2);
        assert_eq!(s.first_fit_from(3), 4);
    }

    #[test]
    fn reverse_first_fit_descends() {
        let mut s = StampSet::with_capacity(8);
        s.advance();
        s.insert(4);
        s.insert(3);
        assert_eq!(s.reverse_first_fit_from(4), 2);
        // Everything taken: returns -1.
        s.insert(0);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.reverse_first_fit_from(4), -1);
    }

    #[test]
    fn stale_marks_do_not_leak_across_generations() {
        let mut s = StampSet::with_capacity(4);
        for round in 0..100 {
            s.advance();
            s.insert(round % 4);
            for c in 0..4 {
                assert_eq!(s.contains(c), c == round % 4, "round {round}");
            }
        }
    }
}
