//! Stamp-marked forbidden-color sets.
//!
//! Two representations of the same abstraction — "the set of colors my
//! current net/vertex must avoid" — both cleared in O(1) by bumping a
//! marker instead of touching memory:
//!
//! * [`StampSet`] — the paper's layout: one `u64` stamp *per color*.
//!   Insert and membership are one store/load, but a first-fit scan costs
//!   8 bytes and one branch per color probed.
//! * [`BitStampSet`] — word-packed: one `u64` bitmap word per **64
//!   colors** with one stamp *per word*. Insert is a single OR, and the
//!   first-fit scan inspects 64 colors per word via `trailing_ones`,
//!   densifying the hot scan 64×.
//!
//! The [`ForbiddenSet`] trait lets every kernel (and
//! [`crate::ctx::ThreadCtx`]) be generic over the representation so the
//! two can be compared head-to-head; the kernels default to
//! [`BitStampSet`].

use crate::simd::{ActiveKernel, KernelImpl};
use crate::{Color, UNCOLORED};

/// The shared contract of a forbidden-color set: O(1) logical clear via
/// [`advance`](ForbiddenSet::advance), amortized-O(1) inserts with growth
/// on demand, and first-fit scans in both directions.
///
/// Implementations must agree exactly — a property test drives random
/// operation sequences against [`StampSet`] and [`BitStampSet`] and
/// asserts identical answers.
pub trait ForbiddenSet: Send {
    /// Creates a set able to hold colors `0..capacity` without growth.
    fn with_capacity(capacity: usize) -> Self
    where
        Self: Sized;

    /// Starts a fresh logical set (O(1); no memory is touched).
    fn advance(&mut self);

    /// Inserts a color, growing the backing storage if needed.
    fn insert(&mut self, color: Color);

    /// Membership test for the current logical set.
    fn contains(&self, color: Color) -> bool;

    /// Smallest color `≥ from` not in the set (first-fit scan).
    fn first_fit_from(&self, from: Color) -> Color;

    /// Largest color `≤ from` not in the set, or [`UNCOLORED`] if every
    /// color in `0..=from` is forbidden (reverse first-fit scan).
    fn reverse_first_fit_from(&self, from: Color) -> Color;

    /// Current capacity (colors storable without growth).
    fn capacity(&self) -> usize;

    /// Installs the resolved `--kernel` dispatch for this set's scans.
    ///
    /// Default no-op: representations without vectorized paths (the
    /// [`StampSet`] executable spec) ignore the request, which is exactly
    /// the scalar-stays-the-spec contract.
    fn set_kernel(&mut self, _kernel: KernelImpl) {}

    /// Hints that the storage backing `color` will be touched soon.
    ///
    /// Default no-op; issued by the vectorized gather path one lane block
    /// ahead of its insert sub-loop.
    #[inline]
    fn prefetch_word(&self, _color: Color) {}
}

/// A forbidden-color set that is "emptied" in O(1).
///
/// The paper's implementation detail (§III): each thread allocates one
/// array for its forbidden set `F` and never resets it — a monotonically
/// increasing *marker* distinguishes the current net/vertex's entries from
/// stale ones. [`StampSet::advance`] starts a fresh logical set; a color is
/// a member iff its stamp equals the current marker.
///
/// ```
/// use bgpc::StampSet;
/// let mut f = StampSet::with_capacity(8);
/// f.advance();
/// f.insert(0);
/// f.insert(1);
/// assert_eq!(f.first_fit_from(0), 2);
/// f.advance(); // O(1) "reset"
/// assert_eq!(f.first_fit_from(0), 0);
/// ```
pub struct StampSet {
    stamp: Vec<u64>,
    mark: u64,
}

impl StampSet {
    /// Creates a set able to hold colors `0..capacity` without growth.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            stamp: vec![0; capacity],
            // The marker starts at 1 so the zeroed stamps (including
            // resize padding) are always stale: a fresh set is empty.
            mark: 1,
        }
    }

    /// Starts a fresh logical set (O(1); no memory is touched).
    #[inline]
    pub fn advance(&mut self) {
        // u64 markers cannot realistically wrap (2⁶⁴ advances).
        self.mark += 1;
    }

    /// Inserts a color, growing the backing array if needed.
    #[inline]
    pub fn insert(&mut self, color: Color) {
        debug_assert!(color >= 0, "cannot forbid the UNCOLORED sentinel");
        let idx = color as usize;
        if idx >= self.stamp.len() {
            // Doubling keeps growth amortized O(1); colors are bounded by
            // the graph's degree structure so this settles quickly.
            self.stamp.resize((idx + 1).next_power_of_two(), 0);
        }
        self.stamp[idx] = self.mark;
    }

    /// Membership test for the current logical set.
    #[inline]
    pub fn contains(&self, color: Color) -> bool {
        debug_assert!(color >= 0);
        let idx = color as usize;
        idx < self.stamp.len() && self.stamp[idx] == self.mark
    }

    /// Smallest color `≥ from` not in the set (first-fit scan).
    #[inline]
    pub fn first_fit_from(&self, from: Color) -> Color {
        let mut col = from;
        while self.contains(col) {
            col += 1;
        }
        col
    }

    /// Largest color `≤ from` not in the set, or [`crate::UNCOLORED`] if
    /// every color in `0..=from` is forbidden (reverse first-fit scan).
    #[inline]
    pub fn reverse_first_fit_from(&self, from: Color) -> Color {
        let mut col = from;
        while col >= 0 && self.contains(col) {
            col -= 1;
        }
        col
    }

    /// Current capacity (colors storable without growth).
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }
}

impl ForbiddenSet for StampSet {
    fn with_capacity(capacity: usize) -> Self {
        StampSet::with_capacity(capacity)
    }

    #[inline]
    fn advance(&mut self) {
        StampSet::advance(self)
    }

    #[inline]
    fn insert(&mut self, color: Color) {
        StampSet::insert(self, color)
    }

    #[inline]
    fn contains(&self, color: Color) -> bool {
        StampSet::contains(self, color)
    }

    #[inline]
    fn first_fit_from(&self, from: Color) -> Color {
        StampSet::first_fit_from(self, from)
    }

    #[inline]
    fn reverse_first_fit_from(&self, from: Color) -> Color {
        StampSet::reverse_first_fit_from(self, from)
    }

    fn capacity(&self) -> usize {
        StampSet::capacity(self)
    }

    // set_kernel: default no-op — the StampSet *is* the scalar spec.

    #[inline]
    fn prefetch_word(&self, color: Color) {
        sparse::prefetch::prefetch_read(&self.stamp, color.max(0) as usize);
    }
}

/// Word-packed, epoch-stamped forbidden set: one `u64` bitmap word per 64
/// colors, with one stamp per *word* for the O(1) clear.
///
/// A word is *live* when its stamp equals the current marker; a stale word
/// reads as all-zeros (empty). Insert re-initializes a stale word lazily,
/// so [`advance`](BitStampSet::advance) still touches no memory. The hot
/// first-fit becomes a scan for the first word with a zero bit followed by
/// `trailing_ones` — 64 colors per probe instead of one — and the reverse
/// first-fit needed by the net-based Algorithm 8 is the mirror-image
/// top-down scan via `leading_zeros`.
///
/// ```
/// use bgpc::BitStampSet;
/// let mut f = BitStampSet::with_capacity(128);
/// f.advance();
/// for c in 0..100 {
///     f.insert(c);
/// }
/// assert_eq!(f.first_fit_from(0), 100);
/// assert_eq!(f.reverse_first_fit_from(99), -1);
/// f.advance(); // O(1) "reset"
/// assert_eq!(f.first_fit_from(0), 0);
/// ```
pub struct BitStampSet {
    /// Interleaved `[stamp, bits]` pairs: one 16-byte entry per 64 colors,
    /// so a spill touches a single cache line instead of two parallel
    /// arrays.
    entries: Vec<WordEntry>,
    mark: u64,
    /// Resolved first-fit dispatch (see [`crate::simd`]); defaults to the
    /// widest tier the CPU supports, pinned to scalar by
    /// [`ForbiddenSet::set_kernel`] under `--kernel scalar`.
    kernel: ActiveKernel,
}

/// One 16-byte forbidden-set slot covering 64 colors. `repr(C)` so the
/// vectorized scans of [`crate::simd`] may load `[stamp, bits]` pairs as
/// packed 128/256-bit lanes.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct WordEntry {
    pub(crate) stamp: u64,
    pub(crate) bits: u64,
}

const EMPTY_ENTRY: WordEntry = WordEntry { stamp: 0, bits: 0 };

impl BitStampSet {
    /// Creates a set able to hold colors `0..capacity` without growth.
    pub fn with_capacity(capacity: usize) -> Self {
        let n_words = capacity.div_ceil(64).max(1);
        Self {
            entries: vec![EMPTY_ENTRY; n_words],
            // Marker starts at 1: zeroed stamps (and resize padding) are
            // stale, so a fresh set is empty.
            mark: 1,
            kernel: KernelImpl::Auto.resolve(),
        }
    }

    /// The interleaved word entries, for the scalar≡simd property tests
    /// (the production scans reach the entries directly via
    /// [`Self::first_fit_from`]'s dispatch).
    #[cfg(test)]
    #[inline]
    pub(crate) fn raw_entries(&self) -> &[WordEntry] {
        &self.entries
    }

    /// The current marker, paired with [`Self::raw_entries`].
    #[cfg(test)]
    #[inline]
    pub(crate) fn raw_mark(&self) -> u64 {
        self.mark
    }

    /// The bitmap word covering colors `64*wi .. 64*wi + 64`, reading
    /// stale and out-of-range words as empty.
    #[inline]
    fn live_word(&self, wi: usize) -> u64 {
        match self.entries.get(wi) {
            Some(e) if e.stamp == self.mark => e.bits,
            _ => 0,
        }
    }

    /// Starts a fresh logical set (O(1); no memory is touched).
    #[inline]
    pub fn advance(&mut self) {
        self.mark += 1;
    }

    /// Inserts a color, growing the backing arrays if needed.
    #[inline]
    pub fn insert(&mut self, color: Color) {
        debug_assert!(color >= 0, "cannot forbid the UNCOLORED sentinel");
        let idx = color as usize;
        let wi = idx / 64;
        let bit = 1u64 << (idx % 64);
        let mark = self.mark;
        // One bounds branch via `get_mut`; the stamp compare stays a
        // (near-perfectly predicted) branch so it never joins the
        // load→OR→store dependency chain of the common live-word case.
        match self.entries.get_mut(wi) {
            Some(e) if e.stamp == mark => e.bits |= bit,
            Some(e) => {
                e.stamp = mark;
                e.bits = bit;
            }
            None => self.grow_insert(wi, bit),
        }
    }

    /// Insert growth path, out of line to keep the hot path lean.
    #[cold]
    fn grow_insert(&mut self, wi: usize, bit: u64) {
        self.entries.resize((wi + 1).next_power_of_two(), EMPTY_ENTRY);
        self.entries[wi] = WordEntry {
            stamp: self.mark,
            bits: bit,
        };
    }

    /// Membership test for the current logical set.
    #[inline]
    pub fn contains(&self, color: Color) -> bool {
        debug_assert!(color >= 0);
        let idx = color as usize;
        (self.live_word(idx / 64) >> (idx % 64)) & 1 == 1
    }

    /// Smallest color `≥ from` not in the set.
    ///
    /// Branchless per probe: bits below `from` in the first word are
    /// masked in as forbidden, then each word answers "any free color
    /// here?" for 64 colors at once and `trailing_ones` indexes the hit.
    /// Dispatches to the SSE2/AVX2 multi-word scans of [`crate::simd`]
    /// when a vector kernel is installed; the private `first_fit_scalar`
    /// word loop is the executable spec either way.
    #[inline]
    pub fn first_fit_from(&self, from: Color) -> Color {
        match self.kernel {
            ActiveKernel::Scalar => self.first_fit_scalar(from),
            k => crate::simd::first_fit_words(&self.entries, self.mark, from, k),
        }
    }

    /// The scalar first-fit spec: one live word per probe.
    #[inline]
    fn first_fit_scalar(&self, from: Color) -> Color {
        debug_assert!(from >= 0);
        let start = from as usize;
        let mut wi = start / 64;
        let mut forbidden = self.live_word(wi) | ((1u64 << (start % 64)) - 1);
        // Terminates: words past the backing array read as empty.
        while forbidden == u64::MAX {
            wi += 1;
            forbidden = self.live_word(wi);
        }
        (wi * 64 + forbidden.trailing_ones() as usize) as Color
    }

    /// Largest color `≤ from` not in the set, or [`UNCOLORED`] if every
    /// color in `0..=from` is forbidden — the top-down word scan used by
    /// the net-based Algorithm 8's reverse first-fit.
    #[inline]
    pub fn reverse_first_fit_from(&self, from: Color) -> Color {
        if from < 0 {
            return from;
        }
        let start = from as usize;
        let mut wi = start / 64;
        let bit = start % 64;
        // Bits above `from` in the top word are out of range: mask them
        // out of the availability word.
        let mask = if bit == 63 {
            u64::MAX
        } else {
            (1u64 << (bit + 1)) - 1
        };
        let mut avail = !self.live_word(wi) & mask;
        loop {
            if avail != 0 {
                return (wi * 64 + 63 - avail.leading_zeros() as usize) as Color;
            }
            if wi == 0 {
                return UNCOLORED;
            }
            wi -= 1;
            avail = !self.live_word(wi);
        }
    }

    /// Current capacity (colors storable without growth).
    pub fn capacity(&self) -> usize {
        self.entries.len() * 64
    }
}

impl ForbiddenSet for BitStampSet {
    fn with_capacity(capacity: usize) -> Self {
        BitStampSet::with_capacity(capacity)
    }

    #[inline]
    fn advance(&mut self) {
        BitStampSet::advance(self)
    }

    #[inline]
    fn insert(&mut self, color: Color) {
        BitStampSet::insert(self, color)
    }

    #[inline]
    fn contains(&self, color: Color) -> bool {
        BitStampSet::contains(self, color)
    }

    #[inline]
    fn first_fit_from(&self, from: Color) -> Color {
        BitStampSet::first_fit_from(self, from)
    }

    #[inline]
    fn reverse_first_fit_from(&self, from: Color) -> Color {
        BitStampSet::reverse_first_fit_from(self, from)
    }

    fn capacity(&self) -> usize {
        BitStampSet::capacity(self)
    }

    #[inline]
    fn set_kernel(&mut self, kernel: KernelImpl) {
        self.kernel = kernel.resolve();
    }

    #[inline]
    fn prefetch_word(&self, color: Color) {
        sparse::prefetch::prefetch_read(&self.entries, color.max(0) as usize / 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = StampSet::with_capacity(8);
        s.advance();
        s.insert(3);
        assert!(s.contains(3));
        assert!(!s.contains(2));
    }

    #[test]
    fn advance_empties_in_o1() {
        let mut s = StampSet::with_capacity(4);
        s.advance();
        s.insert(0);
        s.insert(1);
        s.advance();
        assert!(!s.contains(0));
        assert!(!s.contains(1));
    }

    #[test]
    fn grows_on_demand() {
        let mut s = StampSet::with_capacity(2);
        s.advance();
        s.insert(100);
        assert!(s.contains(100));
        assert!(s.capacity() >= 101);
        assert!(!s.contains(50));
    }

    #[test]
    fn contains_beyond_capacity_is_false() {
        let s = StampSet::with_capacity(4);
        assert!(!s.contains(1000));
    }

    #[test]
    fn fresh_sets_are_empty_before_first_advance() {
        let s = StampSet::with_capacity(4);
        assert!(!s.contains(0));
        let b = BitStampSet::with_capacity(4);
        assert!(!b.contains(0));
    }

    #[test]
    fn first_fit_skips_forbidden_prefix() {
        let mut s = StampSet::with_capacity(8);
        s.advance();
        s.insert(0);
        s.insert(1);
        s.insert(3);
        assert_eq!(s.first_fit_from(0), 2);
        assert_eq!(s.first_fit_from(3), 4);
    }

    #[test]
    fn reverse_first_fit_descends() {
        let mut s = StampSet::with_capacity(8);
        s.advance();
        s.insert(4);
        s.insert(3);
        assert_eq!(s.reverse_first_fit_from(4), 2);
        // Everything taken: returns -1.
        s.insert(0);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.reverse_first_fit_from(4), -1);
    }

    #[test]
    fn stale_marks_do_not_leak_across_generations() {
        let mut s = StampSet::with_capacity(4);
        for round in 0..100 {
            s.advance();
            s.insert(round % 4);
            for c in 0..4 {
                assert_eq!(s.contains(c), c == round % 4, "round {round}");
            }
        }
    }

    // --- BitStampSet ---

    #[test]
    fn bitstamp_insert_and_contains() {
        let mut s = BitStampSet::with_capacity(8);
        s.advance();
        s.insert(3);
        s.insert(64);
        s.insert(127);
        assert!(s.contains(3));
        assert!(s.contains(64));
        assert!(s.contains(127));
        assert!(!s.contains(2));
        assert!(!s.contains(65));
        assert!(!s.contains(1000));
    }

    #[test]
    fn bitstamp_advance_empties_in_o1() {
        let mut s = BitStampSet::with_capacity(128);
        s.advance();
        s.insert(0);
        s.insert(100);
        s.advance();
        assert!(!s.contains(0));
        assert!(!s.contains(100));
    }

    #[test]
    fn bitstamp_grows_on_demand() {
        let mut s = BitStampSet::with_capacity(2);
        s.advance();
        s.insert(1000);
        assert!(s.contains(1000));
        assert!(s.capacity() >= 1001);
        assert!(!s.contains(999));
    }

    #[test]
    fn bitstamp_first_fit_crosses_word_boundaries() {
        let mut s = BitStampSet::with_capacity(256);
        s.advance();
        for c in 0..130 {
            s.insert(c);
        }
        assert_eq!(s.first_fit_from(0), 130);
        assert_eq!(s.first_fit_from(63), 130);
        assert_eq!(s.first_fit_from(64), 130);
        assert_eq!(s.first_fit_from(131), 131);
    }

    #[test]
    fn bitstamp_first_fit_from_beyond_capacity() {
        let mut s = BitStampSet::with_capacity(64);
        s.advance();
        s.insert(0);
        assert_eq!(s.first_fit_from(500), 500);
    }

    #[test]
    fn bitstamp_first_fit_ignores_bits_below_from() {
        let mut s = BitStampSet::with_capacity(64);
        s.advance();
        s.insert(5);
        // 0..5 are free but below `from`; 5 itself is forbidden.
        assert_eq!(s.first_fit_from(5), 6);
    }

    #[test]
    fn bitstamp_reverse_first_fit_descends_words() {
        let mut s = BitStampSet::with_capacity(256);
        s.advance();
        for c in 64..130 {
            s.insert(c);
        }
        // 129..=64 all forbidden: drops into the first word.
        assert_eq!(s.reverse_first_fit_from(129), 63);
        assert_eq!(s.reverse_first_fit_from(63), 63);
        // Fill word 0 too: everything in 0..=129 taken.
        for c in 0..64 {
            s.insert(c);
        }
        assert_eq!(s.reverse_first_fit_from(129), -1);
        // But above the filled range there is room.
        assert_eq!(s.reverse_first_fit_from(130), 130);
    }

    #[test]
    fn bitstamp_reverse_first_fit_bit63_boundary() {
        let mut s = BitStampSet::with_capacity(64);
        s.advance();
        s.insert(63);
        assert_eq!(s.reverse_first_fit_from(63), 62);
        s.insert(62);
        assert_eq!(s.reverse_first_fit_from(63), 61);
    }

    #[test]
    fn bitstamp_reverse_first_fit_negative_from() {
        let s = BitStampSet::with_capacity(8);
        assert_eq!(s.reverse_first_fit_from(-1), -1);
    }

    #[test]
    fn bitstamp_stale_words_do_not_leak() {
        let mut s = BitStampSet::with_capacity(128);
        for round in 0..100i32 {
            s.advance();
            s.insert(round % 128);
            for c in 0..128 {
                assert_eq!(s.contains(c), c == round % 128, "round {round}");
            }
        }
    }

    #[test]
    fn trait_objects_agree_via_generics() {
        fn drive<F: ForbiddenSet>() -> (Color, Color) {
            let mut f = F::with_capacity(70);
            f.advance();
            for c in 0..70 {
                f.insert(c);
            }
            (f.first_fit_from(0), f.reverse_first_fit_from(69))
        }
        assert_eq!(drive::<StampSet>(), drive::<BitStampSet>());
        assert_eq!(drive::<BitStampSet>(), (70, -1));
    }
}
