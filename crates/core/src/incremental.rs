//! Incremental recoloring for streaming graph mutations.
//!
//! Production bipartite patterns mutate — new rows, new columns are rare,
//! but new *nonzeros* arrive constantly — and a full recolor throws away
//! everything the previous run learned. This module makes a finished
//! coloring updatable instead of disposable:
//!
//! 1. [`CsrDelta`] describes a batch of edge insertions and deletions
//!    against an existing [`sparse::Csr`], validated as strictly as
//!    [`sparse::Csr::try_from_parts`] validates raw parts (typed
//!    [`DeltaError`]s, no panics on untrusted input).
//! 2. [`apply_delta`] merges the batch into a fresh CSR in one
//!    O(nnz + |delta|) pass and reports the **dirty set** — the vertices
//!    whose color may have become invalid or wasteful.
//! 3. [`recolor_bgpc_incremental`] / [`recolor_d2gc_incremental`] seed
//!    the existing speculative drivers with the previous coloring and a
//!    work queue containing *only* the dirty vertices, then run the
//!    ordinary color-then-repair loop until clean. Every runner feature
//!    — [`crate::ctx::ThreadCtx`] scratch, forbidden-set dispatch, the SIMD
//!    kernels, all [`Schedule`]s, and [`RunnerOpts`]
//!    (deadline/cancel/online tuner) — applies unchanged.
//!
//! # Why the dirty set suffices
//!
//! Every distance-≤2 constraint path that exists in the mutated graph
//! but not in the base graph passes through an endpoint of a touched
//! edge. For BGPC only the column side is colored, so the dirty set is
//! the distinct **column endpoints** of touched edges: a new pin `(v, u)`
//! can only put `u` in conflict with other pins of net `v`, and
//! recoloring `u` against its *current* nets resolves exactly those
//! constraints. For D2GC both endpoints are colored vertices, so the
//! dirty set is **both endpoints** of every touched (symmetrized) edge.
//! Deletions never invalidate a coloring — removing a constraint cannot
//! create a conflict — but their endpoints are included anyway so freed
//! colors can be reclaimed by the first-fit pass.
//!
//! Stable (non-dirty) vertices keep their colors and stay visible to the
//! forbidden-color gather, so the seeded loop converges to a coloring
//! that is valid on the whole mutated graph, not just around the delta.
//! Net-based conflict phases may transiently uncolor a stable vertex
//! (the first-holder-per-net rule); the queue rebuild scans the full
//! vertex order, so any such vertex is requeued and recolored before the
//! loop exits.
//!
//! # Quality bound
//!
//! Seeding pins the palette of stable vertices, so the incremental color
//! count can exceed a from-scratch run's. It is still bounded:
//! `k_incremental ≤ max(k_base, Δ₂(G′) + 1)` where `Δ₂(G′)` is the
//! maximum distance-2 degree of the mutated graph — each recolored
//! vertex takes the first color not used in its distance-2 neighborhood,
//! which always exists below `Δ₂(G′) + 1`, and stable vertices only hold
//! colors below `k_base`. `crates/check`'s differential oracle enforces
//! this bound across schedules × kernels × index widths.
//!
//! # Example
//!
//! ```
//! use bgpc::incremental::{apply_delta, recolor_bgpc_incremental, CsrDelta};
//! use bgpc::{RunnerOpts, Schedule};
//! use graph::{BipartiteGraph, Ordering};
//!
//! let base = sparse::gen::bipartite_uniform(8, 10, 30, 42);
//! let g = BipartiteGraph::from_matrix(&base);
//! let order = Ordering::Natural.vertex_order_bgpc(&g);
//! let pool = par::Pool::new(2);
//! let full = bgpc::color_bgpc(&g, &order, &Schedule::v_v(), &pool);
//!
//! // Insert one new pin (net 0, vertex 9) — if it already exists, delete it.
//! let delta = if base.contains(0, 9) {
//!     CsrDelta::try_new(vec![], vec![(0, 9)]).unwrap()
//! } else {
//!     CsrDelta::try_new(vec![(0, 9)], vec![]).unwrap()
//! };
//! let applied = apply_delta(&base, &delta).unwrap();
//! let dirty = applied.dirty_bgpc().to_vec();
//! assert_eq!(dirty, vec![9]);
//!
//! let g2 = BipartiteGraph::try_from_matrix_owned(applied.matrix).unwrap();
//! let r = recolor_bgpc_incremental(
//!     &g2, &full.colors, &dirty, &order,
//!     &Schedule::v_v(), &pool, RunnerOpts::default(),
//! );
//! bgpc::verify::verify_bgpc(&g2, &r.colors).unwrap();
//! ```

use std::fmt;

use graph::{BipartiteGraph, Graph};
use par::Pool;
use sparse::{Csr, CsrIndex};

use crate::d2gc::runner::run_speculative_d2gc;
use crate::forbidden::ForbiddenSet;
use crate::metrics::ColoringResult;
use crate::runner::{run_speculative_bgpc, RunnerOpts};
use crate::{Color, Colors, Schedule, UNCOLORED};

/// A rejected delta, with enough structure to say exactly which edge of
/// an untrusted batch was wrong — the incremental analogue of
/// [`sparse::CsrError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The insertion list names the same edge twice.
    DuplicateInsertion {
        /// Net (row) endpoint of the repeated edge.
        row: u32,
        /// Vertex (column) endpoint of the repeated edge.
        col: u32,
    },
    /// The deletion list names the same edge twice.
    DuplicateDeletion {
        /// Net (row) endpoint of the repeated edge.
        row: u32,
        /// Vertex (column) endpoint of the repeated edge.
        col: u32,
    },
    /// The same edge appears in both the insertion and deletion lists.
    InsertDeleteOverlap {
        /// Net (row) endpoint of the conflicting edge.
        row: u32,
        /// Vertex (column) endpoint of the conflicting edge.
        col: u32,
    },
    /// An edge names a row at or beyond the pattern's row count.
    RowOutOfBounds {
        /// The out-of-range row.
        row: u32,
        /// Row count of the pattern the delta was applied to.
        nrows: usize,
    },
    /// An edge names a column at or beyond the pattern's column count.
    ColumnOutOfBounds {
        /// The out-of-range column.
        col: u32,
        /// Column count of the pattern the delta was applied to.
        ncols: usize,
    },
    /// An insertion names an edge the pattern already stores.
    EdgeAlreadyPresent {
        /// Net (row) endpoint of the existing edge.
        row: u32,
        /// Vertex (column) endpoint of the existing edge.
        col: u32,
    },
    /// A deletion names an edge the pattern does not store.
    EdgeNotPresent {
        /// Net (row) endpoint of the missing edge.
        row: u32,
        /// Vertex (column) endpoint of the missing edge.
        col: u32,
    },
    /// A symmetric (D2GC) delta names a self-loop, which the unipartite
    /// graph layer strips and the coloring problems never constrain.
    SelfLoop {
        /// The vertex naming itself.
        vertex: u32,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::DuplicateInsertion { row, col } => {
                write!(f, "insertion ({row}, {col}) listed twice")
            }
            DeltaError::DuplicateDeletion { row, col } => {
                write!(f, "deletion ({row}, {col}) listed twice")
            }
            DeltaError::InsertDeleteOverlap { row, col } => {
                write!(f, "edge ({row}, {col}) both inserted and deleted")
            }
            DeltaError::RowOutOfBounds { row, nrows } => {
                write!(f, "edge row {row} >= nrows {nrows}")
            }
            DeltaError::ColumnOutOfBounds { col, ncols } => {
                write!(f, "edge column {col} >= ncols {ncols}")
            }
            DeltaError::EdgeAlreadyPresent { row, col } => {
                write!(f, "inserted edge ({row}, {col}) already present")
            }
            DeltaError::EdgeNotPresent { row, col } => {
                write!(f, "deleted edge ({row}, {col}) not present")
            }
            DeltaError::SelfLoop { vertex } => {
                write!(f, "symmetric delta names self-loop ({vertex}, {vertex})")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// A validated batch of edge insertions and deletions against a CSR
/// pattern. Edges are `(row, col)` pairs; both lists are kept sorted.
///
/// Construction rejects intra-batch duplicates and insert/delete
/// overlap; bounds and presence against a concrete pattern are checked
/// by [`apply_delta`] (a delta is pattern-independent until applied).
///
/// ```
/// use bgpc::incremental::{CsrDelta, DeltaError};
///
/// let d = CsrDelta::try_new(vec![(2, 0), (0, 1)], vec![(1, 1)]).unwrap();
/// assert_eq!(d.insertions(), &[(0, 1), (2, 0)]); // sorted
/// assert_eq!(d.deletions(), &[(1, 1)]);
/// assert!(!d.is_empty());
/// assert!(CsrDelta::empty().is_empty());
///
/// // The same edge cannot be inserted and deleted in one batch.
/// assert_eq!(
///     CsrDelta::try_new(vec![(0, 1)], vec![(0, 1)]),
///     Err(DeltaError::InsertDeleteOverlap { row: 0, col: 1 }),
/// );
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CsrDelta {
    insertions: Vec<(u32, u32)>,
    deletions: Vec<(u32, u32)>,
}

/// Sorts a list by `(row, col)` and reports the first adjacent duplicate.
fn sort_and_check(
    mut edges: Vec<(u32, u32)>,
    dup: impl Fn(u32, u32) -> DeltaError,
) -> Result<Vec<(u32, u32)>, DeltaError> {
    edges.sort_unstable();
    for w in edges.windows(2) {
        if w[0] == w[1] {
            return Err(dup(w[0].0, w[0].1));
        }
    }
    Ok(edges)
}

impl CsrDelta {
    /// The delta that changes nothing. [`apply_delta`] on it is a no-op
    /// returning an empty dirty set — the serving layer answers such
    /// updates straight from its cache.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a delta from edge lists, normalizing (sorting) both and
    /// rejecting intra-batch duplicates and insert/delete overlap with a
    /// typed [`DeltaError`].
    pub fn try_new(
        insertions: Vec<(u32, u32)>,
        deletions: Vec<(u32, u32)>,
    ) -> Result<Self, DeltaError> {
        let insertions = sort_and_check(insertions, |row, col| DeltaError::DuplicateInsertion {
            row,
            col,
        })?;
        let deletions = sort_and_check(deletions, |row, col| DeltaError::DuplicateDeletion {
            row,
            col,
        })?;
        // Two-pointer sweep over the sorted lists for overlap.
        let (mut x, mut y) = (0, 0);
        while x < insertions.len() && y < deletions.len() {
            match insertions[x].cmp(&deletions[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    return Err(DeltaError::InsertDeleteOverlap {
                        row: insertions[x].0,
                        col: insertions[x].1,
                    });
                }
            }
        }
        Ok(Self {
            insertions,
            deletions,
        })
    }

    /// True when the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// Number of touched edges (insertions plus deletions).
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// The sorted insertion list.
    pub fn insertions(&self) -> &[(u32, u32)] {
        &self.insertions
    }

    /// The sorted deletion list.
    pub fn deletions(&self) -> &[(u32, u32)] {
        &self.deletions
    }

    /// Mirrors every edge for application to a symmetric (D2GC) pattern:
    /// each `(u, v)` with `u != v` becomes `(u, v)` *and* `(v, u)`, so
    /// [`apply_delta`] preserves structural symmetry. Self-loops are
    /// rejected ([`DeltaError::SelfLoop`]) — the unipartite graph layer
    /// strips the diagonal, so a self-loop edge could never take effect.
    /// Listing an edge in both orientations is fine; the mirror set is
    /// deduplicated.
    pub fn symmetrized(&self) -> Result<CsrDelta, DeltaError> {
        let mirror = |edges: &[(u32, u32)]| -> Result<Vec<(u32, u32)>, DeltaError> {
            let mut out = Vec::with_capacity(edges.len() * 2);
            for &(u, v) in edges {
                if u == v {
                    return Err(DeltaError::SelfLoop { vertex: u });
                }
                out.push((u, v));
                out.push((v, u));
            }
            out.sort_unstable();
            out.dedup();
            Ok(out)
        };
        CsrDelta::try_new(mirror(&self.insertions)?, mirror(&self.deletions)?)
    }
}

/// The result of [`apply_delta`]: the mutated pattern plus the touched
/// row/column sets from which the per-problem dirty sets derive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaApplied<I: CsrIndex = u32> {
    /// The mutated pattern, revalidated like [`sparse::Csr::try_from_parts`].
    pub matrix: Csr<I>,
    /// Distinct rows (nets) with a touched edge, sorted.
    touched_rows: Vec<u32>,
    /// Distinct columns (vertices) with a touched edge, sorted.
    touched_cols: Vec<u32>,
}

impl<I: CsrIndex> DeltaApplied<I> {
    /// Dirty set for BGPC: the distinct column (colored-side) endpoints
    /// of touched edges. See the module docs for why this suffices.
    pub fn dirty_bgpc(&self) -> &[u32] {
        &self.touched_cols
    }

    /// Dirty set for D2GC: the union of both endpoint sets of touched
    /// edges (a symmetrized delta touches each edge from both sides, so
    /// this equals either set — the union is taken defensively).
    pub fn dirty_d2gc(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.touched_rows.len() + self.touched_cols.len());
        out.extend_from_slice(&self.touched_rows);
        out.extend_from_slice(&self.touched_cols);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distinct touched rows (nets), sorted.
    pub fn touched_rows(&self) -> &[u32] {
        &self.touched_rows
    }

    /// Distinct touched columns (vertices), sorted.
    pub fn touched_cols(&self) -> &[u32] {
        &self.touched_cols
    }
}

/// Applies a validated delta to a pattern, producing the mutated CSR and
/// the touched-endpoint sets in one O(nnz + |delta|) merge pass.
///
/// Checks every edge against the concrete pattern: rows and columns must
/// be in bounds, insertions must be absent, deletions present — each
/// violation is a typed [`DeltaError`]. An empty delta is a no-op: the
/// returned matrix equals the input and both touched sets are empty.
pub fn apply_delta<I: CsrIndex>(
    m: &Csr<I>,
    delta: &CsrDelta,
) -> Result<DeltaApplied<I>, DeltaError> {
    let (nrows, ncols) = (m.nrows(), m.ncols());
    for &(row, col) in delta.insertions().iter().chain(delta.deletions()) {
        if row as usize >= nrows {
            return Err(DeltaError::RowOutOfBounds { row, nrows });
        }
        if col as usize >= ncols {
            return Err(DeltaError::ColumnOutOfBounds { col, ncols });
        }
    }

    let mut row_ptr: Vec<usize> = Vec::with_capacity(nrows + 1);
    row_ptr.push(0);
    let mut col_idx: Vec<u32> =
        Vec::with_capacity(m.nnz() + delta.insertions.len() - delta.deletions.len().min(m.nnz()));
    let mut ins = delta.insertions.iter().copied().peekable();
    let mut del = delta.deletions.iter().copied().peekable();
    for i in 0..nrows {
        let row = i as u32;
        let mut base = m.row(i).iter().copied().peekable();
        loop {
            // Next base entry surviving this row's deletions.
            while let (Some(&b), Some(&(dr, dc))) = (base.peek(), del.peek()) {
                if dr != row || dc > b {
                    break;
                }
                if dc == b {
                    del.next();
                    base.next();
                } else {
                    return Err(DeltaError::EdgeNotPresent { row: dr, col: dc });
                }
            }
            let b = base.peek().copied();
            let ins_here = ins.peek().copied().filter(|&(ir, _)| ir == row);
            match (b, ins_here) {
                (Some(bc), Some((_, ic))) => {
                    if ic == bc {
                        return Err(DeltaError::EdgeAlreadyPresent { row, col: ic });
                    } else if ic < bc {
                        col_idx.push(ic);
                        ins.next();
                    } else {
                        col_idx.push(bc);
                        base.next();
                    }
                }
                (Some(bc), None) => {
                    col_idx.push(bc);
                    base.next();
                }
                (None, Some((_, ic))) => {
                    // A trailing deletion in this row larger than every
                    // base entry is caught by the post-row check below.
                    col_idx.push(ic);
                    ins.next();
                }
                (None, None) => break,
            }
        }
        // Deletions left in this row name edges past the row's end.
        if let Some(&(dr, dc)) = del.peek() {
            if dr == row {
                return Err(DeltaError::EdgeNotPresent { row: dr, col: dc });
            }
        }
        row_ptr.push(col_idx.len());
    }

    let matrix = Csr::<I>::try_from_raw(nrows, ncols, row_ptr, col_idx)
        .expect("merge of valid pattern and validated delta preserves CSR invariants");

    let mut touched_rows: Vec<u32> = Vec::with_capacity(delta.len());
    let mut touched_cols: Vec<u32> = Vec::with_capacity(delta.len());
    for &(row, col) in delta.insertions().iter().chain(delta.deletions()) {
        touched_rows.push(row);
        touched_cols.push(col);
    }
    touched_rows.sort_unstable();
    touched_rows.dedup();
    touched_cols.sort_unstable();
    touched_cols.dedup();
    Ok(DeltaApplied {
        matrix,
        touched_rows,
        touched_cols,
    })
}

/// Seeds a color array from a previous run, uncoloring the dirty set.
/// Returns the seeded array, the deduplicated dirty queue, and the
/// largest base color still pinned (for forbidden-set sizing).
fn seed_colors(base_colors: &[Color], dirty: &[u32]) -> (Colors, Vec<u32>, Color) {
    let colors = Colors::new(base_colors.len());
    for (u, &c) in base_colors.iter().enumerate() {
        if c != UNCOLORED {
            colors.set(u, c);
        }
    }
    let mut w0: Vec<u32> = dirty.to_vec();
    w0.sort_unstable();
    w0.dedup();
    for &u in &w0 {
        colors.clear(u as usize);
    }
    let mut max_base: Color = -1;
    for u in 0..base_colors.len() {
        max_base = max_base.max(colors.get(u));
    }
    (colors, w0, max_base)
}

/// Incrementally recolors a BGPC instance after a mutation: `g` is the
/// **mutated** graph, `base_colors` the coloring of the pre-mutation
/// graph, and `dirty` the vertices whose colors may no longer be valid
/// (from [`DeltaApplied::dirty_bgpc`]). Stable vertices keep their
/// colors; only the dirty set (plus any conflict losers the speculative
/// loop discovers) is recolored. Dispatches the forbidden-set
/// representation per instance exactly like [`crate::color_bgpc_with_opts`].
///
/// `order` must cover every vertex of `g` — it is the repair order for
/// degraded runs and the rebuild set for net-based conflict phases.
///
/// An empty `dirty` set returns the base coloring unchanged in zero
/// iterations.
///
/// # Panics
///
/// Panics if `base_colors.len() != g.n_vertices()` — a delta never
/// changes the pattern's dimensions, so a length mismatch means the
/// coloring belongs to a different graph. Callers holding untrusted
/// pairings (the serve daemon) check lengths before calling.
pub fn recolor_bgpc_incremental<I: CsrIndex>(
    g: &BipartiteGraph<I>,
    base_colors: &[Color],
    dirty: &[u32],
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    if g.max_net_size() > crate::tuning::DENSE_FORBIDDEN_CUTOFF {
        recolor_bgpc_incremental_with_set::<crate::StampSet, I>(
            g, base_colors, dirty, order, schedule, pool, opts,
        )
    } else {
        recolor_bgpc_incremental_with_set::<crate::BitStampSet, I>(
            g, base_colors, dirty, order, schedule, pool, opts,
        )
    }
}

/// [`recolor_bgpc_incremental`] generic over the forbidden-set
/// representation `F`, for harnesses that pin the representation axis.
#[allow(clippy::too_many_arguments)]
pub fn recolor_bgpc_incremental_with_set<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    base_colors: &[Color],
    dirty: &[u32],
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    assert_eq!(
        base_colors.len(),
        g.n_vertices(),
        "base coloring does not match the mutated graph's vertex count"
    );
    let (colors, w0, max_base) = seed_colors(base_colors, dirty);
    // First-fit may need to step past every pinned base color as well as
    // the structural bound; the sets grow on demand, this sizes the
    // first allocation.
    let capacity = g.max_net_size().max((max_base + 1) as usize) + 64;
    run_speculative_bgpc::<F, I>(g, order, colors, w0, capacity, schedule, pool, opts)
}

/// Incrementally recolors a D2GC instance after a mutation — the
/// unipartite twin of [`recolor_bgpc_incremental`], with `dirty` from
/// [`DeltaApplied::dirty_d2gc`] on a [`CsrDelta::symmetrized`] delta.
///
/// # Panics
///
/// Panics if `base_colors.len() != g.n_vertices()` (same contract as the
/// BGPC entry point).
pub fn recolor_d2gc_incremental<I: CsrIndex>(
    g: &Graph<I>,
    base_colors: &[Color],
    dirty: &[u32],
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    if g.max_degree() > crate::tuning::DENSE_FORBIDDEN_CUTOFF {
        recolor_d2gc_incremental_with_set::<crate::StampSet, I>(
            g, base_colors, dirty, order, schedule, pool, opts,
        )
    } else {
        recolor_d2gc_incremental_with_set::<crate::BitStampSet, I>(
            g, base_colors, dirty, order, schedule, pool, opts,
        )
    }
}

/// [`recolor_d2gc_incremental`] generic over the forbidden-set
/// representation `F`.
#[allow(clippy::too_many_arguments)]
pub fn recolor_d2gc_incremental_with_set<F: ForbiddenSet, I: CsrIndex>(
    g: &Graph<I>,
    base_colors: &[Color],
    dirty: &[u32],
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    assert_eq!(
        base_colors.len(),
        g.n_vertices(),
        "base coloring does not match the mutated graph's vertex count"
    );
    let (colors, w0, max_base) = seed_colors(base_colors, dirty);
    let capacity = g.max_degree().max((max_base + 1) as usize) + 64;
    run_speculative_d2gc::<F, I>(g, order, colors, w0, capacity, schedule, pool, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_bgpc, verify_d2gc};
    use graph::Ordering;

    fn base_pattern() -> Csr {
        sparse::gen::bipartite_uniform(40, 60, 500, 11)
    }

    /// Exact max distance-2 degree of a bipartite instance (test-size
    /// instances only — quadratic in the neighborhood sizes).
    fn max_d2_degree(g: &BipartiteGraph) -> usize {
        let mut best = 0;
        for u in 0..g.n_vertices() {
            let mut seen: Vec<u32> = g
                .nets(u)
                .iter()
                .flat_map(|&v| g.vtxs(v as usize).iter().copied())
                .filter(|&x| x as usize != u)
                .collect();
            seen.sort_unstable();
            seen.dedup();
            best = best.max(seen.len());
        }
        best
    }

    type EdgeList = Vec<(u32, u32)>;

    /// Draws `k` absent edges and `k` present edges from the pattern.
    fn pick_edges(m: &Csr, k: usize, seed: u64) -> (EdgeList, EdgeList) {
        let mut rng = rng::Pcg32::seed_from_u64(seed);
        let mut ins = Vec::new();
        while ins.len() < k {
            let r = (rng.next_u32() as usize % m.nrows()) as u32;
            let c = (rng.next_u32() as usize % m.ncols()) as u32;
            if !m.contains(r as usize, c) && !ins.contains(&(r, c)) {
                ins.push((r, c));
            }
        }
        let all: Vec<(usize, u32)> = m.iter().collect();
        let mut del = Vec::new();
        while del.len() < k.min(all.len()) {
            let (r, c) = all[rng.next_u32() as usize % all.len()];
            if !del.contains(&(r as u32, c)) {
                del.push((r as u32, c));
            }
        }
        (ins, del)
    }

    #[test]
    fn empty_delta_is_a_noop_with_empty_dirty_set() {
        let m = base_pattern();
        let applied = apply_delta(&m, &CsrDelta::empty()).unwrap();
        assert_eq!(applied.matrix, m);
        assert!(applied.dirty_bgpc().is_empty());
        assert!(applied.dirty_d2gc().is_empty());
        assert!(applied.touched_rows().is_empty());
    }

    #[test]
    fn apply_delta_inserts_and_deletes() {
        let m = Csr::from_rows(4, &[vec![0, 2], vec![1], vec![]]);
        let d = CsrDelta::try_new(vec![(2, 3), (0, 1)], vec![(0, 2)]).unwrap();
        let applied = apply_delta(&m, &d).unwrap();
        assert_eq!(applied.matrix.row(0), &[0, 1]);
        assert_eq!(applied.matrix.row(1), &[1]);
        assert_eq!(applied.matrix.row(2), &[3]);
        assert_eq!(applied.dirty_bgpc(), &[1, 2, 3]);
        assert_eq!(applied.touched_rows(), &[0, 2]);
        applied.matrix.validate().unwrap();
    }

    #[test]
    fn degenerate_deltas_are_typed_errors() {
        let m = Csr::from_rows(4, &[vec![0, 2], vec![1]]);
        // Duplicate edge inside one list.
        assert_eq!(
            CsrDelta::try_new(vec![(0, 1), (0, 1)], vec![]),
            Err(DeltaError::DuplicateInsertion { row: 0, col: 1 }),
        );
        assert_eq!(
            CsrDelta::try_new(vec![], vec![(1, 1), (1, 1)]),
            Err(DeltaError::DuplicateDeletion { row: 1, col: 1 }),
        );
        // Delete a nonexistent edge (both mid-row and past-row-end).
        let d = CsrDelta::try_new(vec![], vec![(0, 1)]).unwrap();
        assert_eq!(
            apply_delta(&m, &d),
            Err(DeltaError::EdgeNotPresent { row: 0, col: 1 }),
        );
        let d = CsrDelta::try_new(vec![], vec![(0, 3)]).unwrap();
        assert_eq!(
            apply_delta(&m, &d),
            Err(DeltaError::EdgeNotPresent { row: 0, col: 3 }),
        );
        // Insert an existing edge.
        let d = CsrDelta::try_new(vec![(1, 1)], vec![]).unwrap();
        assert_eq!(
            apply_delta(&m, &d),
            Err(DeltaError::EdgeAlreadyPresent { row: 1, col: 1 }),
        );
        // Out-of-bounds endpoints.
        let d = CsrDelta::try_new(vec![(9, 0)], vec![]).unwrap();
        assert_eq!(
            apply_delta(&m, &d),
            Err(DeltaError::RowOutOfBounds { row: 9, nrows: 2 }),
        );
        let d = CsrDelta::try_new(vec![(0, 9)], vec![]).unwrap();
        assert_eq!(
            apply_delta(&m, &d),
            Err(DeltaError::ColumnOutOfBounds { col: 9, ncols: 4 }),
        );
        // Every error Display names the offending edge.
        for e in [
            DeltaError::DuplicateInsertion { row: 3, col: 7 },
            DeltaError::EdgeNotPresent { row: 3, col: 7 },
        ] {
            assert!(e.to_string().contains('3') && e.to_string().contains('7'), "{e}");
        }
    }

    #[test]
    fn symmetrized_mirrors_and_rejects_self_loops() {
        let d = CsrDelta::try_new(vec![(0, 2)], vec![(3, 1)]).unwrap();
        let s = d.symmetrized().unwrap();
        assert_eq!(s.insertions(), &[(0, 2), (2, 0)]);
        assert_eq!(s.deletions(), &[(1, 3), (3, 1)]);
        // Both orientations given: deduplicated, not a duplicate error.
        let d = CsrDelta::try_new(vec![(0, 2), (2, 0)], vec![]).unwrap();
        assert_eq!(d.symmetrized().unwrap().insertions(), &[(0, 2), (2, 0)]);
        let d = CsrDelta::try_new(vec![(1, 1)], vec![]).unwrap();
        assert_eq!(d.symmetrized(), Err(DeltaError::SelfLoop { vertex: 1 }));
    }

    #[test]
    fn incremental_bgpc_verifies_and_matches_quality_bound() {
        let m = base_pattern();
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(4);
        let full = crate::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);

        let (ins, del) = pick_edges(&m, 12, 99);
        let delta = CsrDelta::try_new(ins, del).unwrap();
        let applied = apply_delta(&m, &delta).unwrap();
        let g2 = BipartiteGraph::from_matrix(&applied.matrix);

        for schedule in Schedule::all() {
            let r = recolor_bgpc_incremental(
                &g2,
                &full.colors,
                applied.dirty_bgpc(),
                &order,
                &schedule,
                &pool,
                RunnerOpts::default(),
            );
            verify_bgpc(&g2, &r.colors)
                .unwrap_or_else(|e| panic!("{} incremental invalid: {e}", schedule.name()));
            assert!(r.degraded.is_none(), "{}", schedule.name());
            // Stable vertices outside the touched neighborhoods kept
            // their colors (spot check: everything never enqueued kept
            // its color unless a net phase shuffled it — with vertex
            // schedules the guarantee is exact for non-dirty vertices
            // whose nets saw no dirty neighbor, so just bound quality).
            let bound = full.num_colors.max(max_d2_degree(&g2) + 1);
            assert!(
                r.num_colors <= bound,
                "{}: {} colors > bound {bound}",
                schedule.name(),
                r.num_colors
            );
        }
    }

    #[test]
    fn incremental_empty_dirty_set_returns_base_unchanged() {
        let m = base_pattern();
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(2);
        let full = crate::color_bgpc(&g, &order, &Schedule::v_v(), &pool);
        let r = recolor_bgpc_incremental(
            &g,
            &full.colors,
            &[],
            &order,
            &Schedule::v_v(),
            &pool,
            RunnerOpts::default(),
        );
        assert_eq!(r.colors, full.colors);
        assert_eq!(r.num_colors, full.num_colors);
        assert_eq!(r.rounds(), 0, "no dirty vertices, no iterations");
    }

    #[test]
    fn incremental_d2gc_verifies_after_symmetric_delta() {
        let m = sparse::gen::erdos_renyi(50, 120, 3);
        let g = Graph::from_symmetric_matrix(&m);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(4);
        let full = crate::d2gc::color_d2gc(&g, &order, &Schedule::v_v_64d(), &pool);

        // Insert a few absent off-diagonal edges, delete a few present.
        let mut rng = rng::Pcg32::seed_from_u64(77);
        let mut ins = Vec::new();
        while ins.len() < 5 {
            let u = rng.next_u32() % 50;
            let v = rng.next_u32() % 50;
            if u != v && !m.contains(u as usize, v) && !ins.contains(&(u.min(v), u.max(v))) {
                ins.push((u.min(v), u.max(v)));
            }
        }
        let all: Vec<(u32, u32)> = m
            .iter()
            .map(|(r, c)| (r as u32, c))
            .filter(|&(r, c)| r < c)
            .collect();
        let del = vec![all[0], all[all.len() / 2]];
        let delta = CsrDelta::try_new(ins, del).unwrap().symmetrized().unwrap();
        let applied = apply_delta(&m, &delta).unwrap();
        assert!(applied.matrix.is_structurally_symmetric());
        let g2 = Graph::from_symmetric_matrix(&applied.matrix);

        for schedule in Schedule::d2gc_set() {
            let r = recolor_d2gc_incremental(
                &g2,
                &full.colors,
                &applied.dirty_d2gc(),
                &order,
                &schedule,
                &pool,
                RunnerOpts::default(),
            );
            verify_d2gc(&g2, &r.colors)
                .unwrap_or_else(|e| panic!("{} incremental invalid: {e}", schedule.name()));
            assert!(r.degraded.is_none(), "{}", schedule.name());
        }
    }

    #[test]
    fn incremental_with_large_base_palette_grows_forbidden_sets() {
        // Seed with colors far above the structural bound: the forbidden
        // sets must grow on demand, not clamp or panic.
        let m = Csr::from_rows(6, &[vec![0, 1], vec![2, 3], vec![4, 5]]);
        let order: Vec<u32> = (0..6).collect();
        let base: Vec<Color> = vec![500, 501, 502, 503, 504, 505];
        let pool = Pool::new(2);
        let d = CsrDelta::try_new(vec![(0, 2)], vec![]).unwrap();
        let applied = apply_delta(&m, &d).unwrap();
        let g2 = BipartiteGraph::from_matrix(&applied.matrix);
        let r = recolor_bgpc_incremental(
            &g2,
            &base,
            applied.dirty_bgpc(),
            &order,
            &Schedule::v_v(),
            &pool,
            RunnerOpts::default(),
        );
        verify_bgpc(&g2, &r.colors).unwrap();
        // Stable vertices kept their (huge) colors.
        assert_eq!(r.colors[0], 500);
        assert_eq!(r.colors[5], 505);
    }

    #[test]
    #[should_panic(expected = "vertex count")]
    fn mismatched_base_coloring_panics() {
        let m = base_pattern();
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(1);
        recolor_bgpc_incremental(
            &g,
            &[0, 1, 2],
            &[0],
            &order,
            &Schedule::v_v(),
            &pool,
            RunnerOpts::default(),
        );
    }
}
