//! The shared color array.

use std::sync::atomic::{AtomicI32, Ordering};

/// A color id. Non-negative values are colors; [`UNCOLORED`] (−1) marks an
/// uncolored vertex, exactly as in the paper's pseudocode.
pub type Color = i32;

/// The sentinel for "not yet colored".
pub const UNCOLORED: Color = -1;

/// The concurrently-written color array `c[.]`.
///
/// The optimistic algorithms read and write colors from many threads with
/// no synchronization — by design: stale reads only cause extra conflicts,
/// which the conflict-removal phase repairs. In Rust those racing accesses
/// must still be atomic; `Relaxed` is sufficient because no thread ever
/// derives cross-thread ordering from a color value within a phase, and the
/// pool's fork/join barriers order the phases themselves. On x86-64 a
/// relaxed `AtomicI32` load/store compiles to a plain `mov`, so this costs
/// nothing over the C/OpenMP original.
pub struct Colors {
    slots: Box<[AtomicI32]>,
}

impl Colors {
    /// Creates an array of `n` uncolored slots.
    pub fn new(n: usize) -> Self {
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicI32::new(UNCOLORED));
        Self {
            slots: v.into_boxed_slice(),
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads the color of vertex `u`.
    #[inline]
    pub fn get(&self, u: usize) -> Color {
        self.slots[u].load(Ordering::Relaxed)
    }

    /// Base pointer of the color array for the vectorized gather kernels
    /// (`AtomicI32` is guaranteed to have the same in-memory
    /// representation as `i32`).
    ///
    /// Reads through this pointer are part of the same deliberate race as
    /// [`Colors::get`]: each gathered lane is an aligned 32-bit load,
    /// equivalent to a relaxed atomic load on every supported target, and
    /// stale lanes only cause extra conflicts for the repair phase —
    /// exactly the scalar contract. Writes must keep going through
    /// [`Colors::set`]/[`Colors::clear`].
    #[inline]
    pub fn as_ptr(&self) -> *const Color {
        self.slots.as_ptr() as *const Color
    }

    /// Writes the color of vertex `u`.
    #[inline]
    pub fn set(&self, u: usize, c: Color) {
        self.slots[u].store(c, Ordering::Relaxed);
    }

    /// Marks vertex `u` uncolored.
    #[inline]
    pub fn clear(&self, u: usize) {
        self.set(u, UNCOLORED);
    }

    /// Resets every slot to uncolored.
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.store(UNCOLORED, Ordering::Relaxed);
        }
    }

    /// Copies the current colors into a plain vector (call outside parallel
    /// regions).
    pub fn snapshot(&self) -> Vec<Color> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of vertices currently uncolored.
    pub fn count_uncolored(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) == UNCOLORED)
            .count()
    }
}

impl std::fmt::Debug for Colors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Colors(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncolored() {
        let c = Colors::new(5);
        assert_eq!(c.len(), 5);
        assert!((0..5).all(|u| c.get(u) == UNCOLORED));
        assert_eq!(c.count_uncolored(), 5);
    }

    #[test]
    fn set_get_clear() {
        let c = Colors::new(3);
        c.set(1, 7);
        assert_eq!(c.get(1), 7);
        assert_eq!(c.count_uncolored(), 2);
        c.clear(1);
        assert_eq!(c.get(1), UNCOLORED);
    }

    #[test]
    fn snapshot_and_reset() {
        let c = Colors::new(3);
        c.set(0, 1);
        c.set(2, 9);
        assert_eq!(c.snapshot(), vec![1, UNCOLORED, 9]);
        c.reset();
        assert_eq!(c.snapshot(), vec![UNCOLORED; 3]);
    }

    #[test]
    fn concurrent_writes_are_safe() {
        let c = Colors::new(1000);
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for u in 0..1000 {
                        c.set(u, t);
                    }
                });
            }
        });
        // Every slot holds one of the written values.
        for u in 0..1000 {
            assert!((0..4).contains(&c.get(u)));
        }
    }
}
