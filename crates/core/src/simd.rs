//! Runtime-dispatched SIMD kernels for the forbidden-set hot paths.
//!
//! Mirrors the [`crate::StampSet`] / [`crate::BitStampSet`] pattern one
//! level down: the scalar loops in [`crate::forbidden`], [`crate::vertex`],
//! [`crate::net`] and [`crate::d2gc`] remain the executable specification,
//! and every vectorized routine in this module must return *bit-identical*
//! answers (a property test drives randomized states through both paths).
//!
//! Dispatch is runtime-detected on x86-64 (`is_x86_feature_detected!`):
//!
//! * **AVX2** — 2 forbidden-set words per first-fit probe, 8-lane color
//!   gathers (`vpgatherdd`) for the forbidden-mark and conflict sweeps.
//! * **SSE2** — the x86-64 baseline: packed stamp-compare first-fit, one
//!   word per probe. SSE2 has no gather instruction, so the mark/conflict
//!   sweeps stay scalar at this tier.
//! * **Scalar** — every other architecture, and the `--kernel scalar`
//!   override. Identical to the spec loops by construction (it *is* them).
//!
//! The public face is [`KernelImpl`] — the `--kernel scalar|simd|auto`
//! axis threaded through [`crate::Schedule`] and
//! [`crate::ctx::ThreadCtx`] — which resolves to an [`ActiveKernel`]
//! once per run.

use crate::color::{Color, Colors, UNCOLORED};
use crate::forbidden::WordEntry;

/// Requested kernel implementation — the `--kernel` axis.
///
/// `Simd` *requests* vectorization but still degrades to the widest tier
/// the CPU actually has (scalar on non-x86-64); `Auto` is the same policy
/// spelled as a default. Forcing `Scalar` pins the executable-spec loops,
/// which is what the differential oracle and the bench baseline use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelImpl {
    /// Force the scalar spec loops everywhere.
    Scalar,
    /// Use the widest vector tier the CPU supports (scalar fallback
    /// elsewhere).
    Simd,
    /// Same resolution as [`KernelImpl::Simd`]; the default, so unpinned
    /// runs get the fast path without opting in.
    #[default]
    Auto,
}

impl KernelImpl {
    /// All axis values, for benchmark/test matrices.
    pub fn all() -> [KernelImpl; 3] {
        [KernelImpl::Scalar, KernelImpl::Simd, KernelImpl::Auto]
    }

    /// Stable label used in CLI flags and benchmark records.
    pub fn label(self) -> &'static str {
        match self {
            KernelImpl::Scalar => "scalar",
            KernelImpl::Simd => "simd",
            KernelImpl::Auto => "auto",
        }
    }

    /// Parses a label (accepts `scalar`, `simd`/`vector`, `auto`).
    pub fn from_name(name: &str) -> Option<KernelImpl> {
        match name {
            "scalar" => Some(KernelImpl::Scalar),
            "simd" | "vector" => Some(KernelImpl::Simd),
            "auto" => Some(KernelImpl::Auto),
            _ => None,
        }
    }

    /// Resolves the request against the running CPU, once per run.
    ///
    /// `is_x86_feature_detected!` caches its CPUID probe, so calling this
    /// per `ThreadCtx` costs one relaxed load.
    pub fn resolve(self) -> ActiveKernel {
        match self {
            KernelImpl::Scalar => ActiveKernel::Scalar,
            KernelImpl::Simd | KernelImpl::Auto => widest_supported(),
        }
    }
}

impl std::fmt::Display for KernelImpl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The resolved dispatch tier a run actually executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ActiveKernel {
    /// The executable-spec scalar loops.
    #[default]
    Scalar,
    /// x86-64 baseline: packed first-fit word scan, scalar gathers.
    Sse2,
    /// 8-lane gathers + 2-word first-fit probes.
    Avx2,
}

impl ActiveKernel {
    /// Stable label stamped into traces and benchmark records.
    pub fn label(self) -> &'static str {
        match self {
            ActiveKernel::Scalar => "scalar",
            ActiveKernel::Sse2 => "sse2",
            ActiveKernel::Avx2 => "avx2",
        }
    }

    /// Whether any vectorized path is active.
    #[inline]
    pub fn is_vector(self) -> bool {
        !matches!(self, ActiveKernel::Scalar)
    }

    /// Whether the 8-lane color-gather paths (forbidden-mark, conflict
    /// sweep) are available. SSE2 lacks a gather instruction, so only the
    /// first-fit word scan is vectorized at that tier.
    #[inline]
    pub fn has_gather(self) -> bool {
        matches!(self, ActiveKernel::Avx2)
    }
}

#[cfg(target_arch = "x86_64")]
fn widest_supported() -> ActiveKernel {
    if std::arch::is_x86_feature_detected!("avx2") {
        ActiveKernel::Avx2
    } else {
        // SSE2 is architecturally guaranteed on x86-64.
        ActiveKernel::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn widest_supported() -> ActiveKernel {
    ActiveKernel::Scalar
}

/// Comma-separated ISA feature string stamped into `BENCH_*.json` so runs
/// are comparable across machines: `"sse2,avx2"`, `"sse2"`, or `"scalar"`.
pub fn isa_features() -> &'static str {
    match widest_supported() {
        ActiveKernel::Avx2 => "sse2,avx2",
        ActiveKernel::Sse2 => "sse2",
        ActiveKernel::Scalar => "scalar",
    }
}

/// Lane width of the 32-bit gather paths; pin lists shorter than this go
/// straight to the scalar spec loop.
pub(crate) const GATHER_LANES: usize = 8;

// ---------------------------------------------------------------------------
// First-fit over BitStampSet words
// ---------------------------------------------------------------------------

/// The word covering colors `64*wi..64*wi+64`, reading stale and
/// out-of-range words as empty — the same contract as
/// `BitStampSet::live_word`.
#[inline]
fn live_word(entries: &[WordEntry], mark: u64, wi: usize) -> u64 {
    match entries.get(wi) {
        Some(e) if e.stamp == mark => e.bits,
        _ => 0,
    }
}

/// Scalar multi-word scan from word `wi` (no sub-word mask) — the spec
/// tail shared by every tier.
fn scalar_scan(entries: &[WordEntry], mark: u64, mut wi: usize) -> Color {
    let mut forbidden = live_word(entries, mark, wi);
    // Terminates: words past the backing array read as empty.
    while forbidden == u64::MAX {
        wi += 1;
        forbidden = live_word(entries, mark, wi);
    }
    (wi * 64 + forbidden.trailing_ones() as usize) as Color
}

/// Vectorized first-fit over interleaved `[stamp, bits]` word entries:
/// smallest color `≥ from` whose bit is clear in the live bitmap.
///
/// Must agree exactly with `BitStampSet::first_fit_from` under
/// [`ActiveKernel::Scalar`] — the partial leading word is always handled
/// by the scalar spec, then SSE2/AVX2 tiers scan 1/2 full words per probe
/// with a packed stamp-compare instead of a per-word branch.
#[inline]
pub(crate) fn first_fit_words(
    entries: &[WordEntry],
    mark: u64,
    from: Color,
    kernel: ActiveKernel,
) -> Color {
    debug_assert!(from >= 0);
    let start = from as usize;
    let wi = start / 64;
    let first = live_word(entries, mark, wi) | ((1u64 << (start % 64)) - 1);
    if first != u64::MAX {
        return (wi * 64 + first.trailing_ones() as usize) as Color;
    }
    match kernel {
        ActiveKernel::Scalar => scalar_scan(entries, mark, wi + 1),
        // A vector probe needs at least one full block past the leading
        // word to pay for the (non-inlinable `target_feature`) call; tiny
        // scans go straight to the spec tail instead of eating pure
        // dispatch overhead.
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `kernel` only resolves to these tiers when
        // `widest_supported` confirmed the features at runtime.
        ActiveKernel::Sse2 if entries.len() > wi + 2 => unsafe {
            sse2_scan(entries, mark, wi + 1)
        },
        #[cfg(target_arch = "x86_64")]
        ActiveKernel::Avx2 if entries.len() > wi + 4 => unsafe {
            avx2_scan(entries, mark, wi + 1)
        },
        _ => scalar_scan(entries, mark, wi + 1),
    }
}

// Both x86 tiers exploit the same exactness argument: a word with no free
// color is *precisely* the 16-byte entry `[stamp = mark, bits = all-ones]`
// — any other stamp reads as live = 0 (all colors free) and any other
// bits value has a zero bit. The hot loop therefore needs only a packed
// equality against that constant pattern; the first block that mismatches
// is handed to the scalar spec tail, which pinpoints the free bit. That
// keeps the dense-scan loop at one compare + one branch per block instead
// of the stamp-mask/extract dance per word.

/// SSE2 word scan: two 16-byte `[stamp, bits]` entries per iteration,
/// full-pattern compare only (SSE2 has no 64-bit compare, but whole-entry
/// equality falls out of `cmpeq_epi32` across all four lanes).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sse2_scan(entries: &[WordEntry], mark: u64, mut wi: usize) -> Color {
    use std::arch::x86_64::*;
    let full_pat = _mm_set_epi64x(-1, mark as i64);
    while wi + 1 < entries.len() {
        // SAFETY: wi + 1 < entries.len() and WordEntry is repr(C) 16 bytes.
        let v0 = _mm_loadu_si128(entries.as_ptr().add(wi) as *const __m128i);
        let v1 = _mm_loadu_si128(entries.as_ptr().add(wi + 1) as *const __m128i);
        let eq = _mm_and_si128(_mm_cmpeq_epi32(v0, full_pat), _mm_cmpeq_epi32(v1, full_pat));
        if _mm_movemask_epi8(eq) != 0xFFFF {
            break;
        }
        wi += 2;
    }
    // First mismatching block, odd tail, or past the array: the scalar
    // spec walks at most two full words to the free bit.
    scalar_scan(entries, mark, wi)
}

/// AVX2 word scan: four entries (256 colors) per iteration via two 32-byte
/// loads whose full-pattern compares are ANDed into a single branch.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_scan(entries: &[WordEntry], mark: u64, mut wi: usize) -> Color {
    use std::arch::x86_64::*;
    // Lanes low→high: [stamp0, bits0, stamp1, bits1].
    let full_pat = _mm256_set_epi64x(-1, mark as i64, -1, mark as i64);
    while wi + 3 < entries.len() {
        // SAFETY: wi + 3 < entries.len(), so both 32-byte loads cover two
        // in-bounds repr(C) entries each.
        let v0 = _mm256_loadu_si256(entries.as_ptr().add(wi) as *const __m256i);
        let v1 = _mm256_loadu_si256(entries.as_ptr().add(wi + 2) as *const __m256i);
        let eq = _mm256_and_si256(
            _mm256_cmpeq_epi64(v0, full_pat),
            _mm256_cmpeq_epi64(v1, full_pat),
        );
        if _mm256_movemask_epi8(eq) as u32 != u32::MAX {
            break;
        }
        wi += 4;
    }
    // First mismatching block or the ≤3-entry tail: the scalar spec walks
    // at most four full words to the free bit.
    scalar_scan(entries, mark, wi)
}

// ---------------------------------------------------------------------------
// Gather paths over the shared color array
// ---------------------------------------------------------------------------
//
// The gathers read the racing `Colors` array through a raw pointer (see
// `Colors::as_ptr`): each lane is an aligned 32-bit read, equivalent to
// the relaxed atomic loads of the scalar spec. Stale values are expected
// and repaired by the conflict phase, exactly as in the scalar loops.

/// Counter sink for the vectorized sweeps, flushed by the kernels into
/// [`trace::Counter`] sheets once per chunk.
#[derive(Default, Clone, Copy)]
pub(crate) struct VecStats {
    /// Forbidden-set inserts issued (matches the scalar probe counter).
    pub probes: u64,
    /// Software prefetches issued (colors + forbidden-set words).
    pub prefetches: u64,
    /// 8-lane vector blocks executed ([`trace::Counter::SimdPathHits`]).
    pub blocks: u64,
}

/// Vectorized forbidden-mark gather over one pin list: for every pin
/// `u != skip` whose color is assigned, inserts that color into `fb`.
/// Pass `u32::MAX` as `skip` to mark unconditionally.
///
/// Exactly equivalent to the scalar spec loop (insert order differs, but
/// forbidden sets are order-insensitive); only call when
/// [`ActiveKernel::has_gather`] — callers keep the scalar loop as the
/// other arm of the branch.
///
/// Pins must index into `colors` (a graph invariant for adjacency lists).
pub(crate) fn gather_mark<F: crate::ForbiddenSet>(
    colors: &Colors,
    pins: &[u32],
    skip: u32,
    fb: &mut F,
    stats: &mut VecStats,
) {
    debug_assert!(pins.iter().all(|&u| (u as usize) < colors.len()));
    #[cfg(target_arch = "x86_64")]
    // SAFETY: has_gather() implies AVX2 was runtime-detected; pins are
    // in-bounds per the debug_assert'd graph invariant.
    unsafe {
        gather_mark_avx2(colors.as_ptr(), pins, skip, fb, stats);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Unreachable in practice (has_gather() is never true here); keep
        // the scalar spec so the call site compiles on every arch.
        for &u in pins {
            if u != skip {
                let cu = colors.get(u as usize);
                if cu != UNCOLORED {
                    fb.insert(cu);
                    stats.probes += 1;
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_mark_avx2<F: crate::ForbiddenSet>(
    base: *const i32,
    pins: &[u32],
    skip: u32,
    fb: &mut F,
    stats: &mut VecStats,
) {
    use std::arch::x86_64::*;
    let skipv = _mm256_set1_epi32(skip as i32);
    let unc = _mm256_set1_epi32(UNCOLORED);
    let mut buf = [0i32; GATHER_LANES];
    let mut k = 0;
    while k + GATHER_LANES <= pins.len() {
        // Prefetch the next block's color words — the forbidden-mark
        // source — one block ahead of the gather.
        if k + 2 * GATHER_LANES <= pins.len() {
            for &p in &pins[k + GATHER_LANES..k + 2 * GATHER_LANES] {
                sparse::prefetch::prefetch_ptr(base.add(p as usize));
            }
            stats.prefetches += GATHER_LANES as u64;
        }
        // SAFETY: 8 in-bounds u32 indices; every gathered address is
        // base + pin, in-bounds by the caller's invariant.
        let idx = _mm256_loadu_si256(pins.as_ptr().add(k) as *const __m256i);
        let cols = _mm256_i32gather_epi32::<4>(base, idx);
        let drop = _mm256_or_si256(
            _mm256_cmpeq_epi32(cols, unc),
            _mm256_cmpeq_epi32(idx, skipv),
        );
        let mut keep =
            !(_mm256_movemask_ps(_mm256_castsi256_ps(drop)) as u32) & 0xFF;
        stats.blocks += 1;
        if keep != 0 {
            _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, cols);
            // Hint the forbidden-set words these colors land in before the
            // insert sub-loop touches them (satellite: prefetch the
            // forbidden-set words, not just the adjacency).
            let mut m = keep;
            while m != 0 {
                fb.prefetch_word(buf[m.trailing_zeros() as usize]);
                stats.prefetches += 1;
                m &= m - 1;
            }
            while keep != 0 {
                fb.insert(buf[keep.trailing_zeros() as usize]);
                stats.probes += 1;
                keep &= keep - 1;
            }
        }
        k += GATHER_LANES;
    }
    // Scalar spec tail.
    for &u in &pins[k..] {
        if u != skip {
            // SAFETY: in-bounds aligned 32-bit read (see module note on
            // the racing color array).
            let cu = *base.add(u as usize);
            if cu != UNCOLORED {
                fb.insert(cu);
                stats.probes += 1;
            }
        }
    }
}

/// Vectorized conflict sweep: `true` iff some pin `u < wv` currently
/// holds color `cw` — the inner test of Algorithm 5 over one pin list.
///
/// Only call when [`ActiveKernel::has_gather`]; same answer as the scalar
/// `any` loop (the scalar spec stops at the first hit, the vector path
/// merely reads a few extra lanes of the racing array).
pub(crate) fn conflict_in_pins(
    colors: &Colors,
    pins: &[u32],
    wv: u32,
    cw: Color,
    stats: &mut VecStats,
) -> bool {
    debug_assert!(pins.iter().all(|&u| (u as usize) < colors.len()));
    #[cfg(target_arch = "x86_64")]
    // SAFETY: has_gather() implies AVX2; pins are in-bounds.
    unsafe {
        conflict_avx2(colors.as_ptr(), pins, wv, cw, stats)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = stats;
        pins.iter()
            .any(|&u| u < wv && colors.get(u as usize) == cw)
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn conflict_avx2(
    base: *const i32,
    pins: &[u32],
    wv: u32,
    cw: Color,
    stats: &mut VecStats,
) -> bool {
    use std::arch::x86_64::*;
    // Unsigned `u < wv` via the sign-bias trick on the signed compare.
    let bias = _mm256_set1_epi32(i32::MIN);
    let wvv = _mm256_set1_epi32((wv as i32) ^ i32::MIN);
    let cwv = _mm256_set1_epi32(cw);
    let mut k = 0;
    while k + GATHER_LANES <= pins.len() {
        // SAFETY: 8 in-bounds indices; gathered addresses in-bounds.
        let idx = _mm256_loadu_si256(pins.as_ptr().add(k) as *const __m256i);
        let cols = _mm256_i32gather_epi32::<4>(base, idx);
        let lower = _mm256_cmpgt_epi32(wvv, _mm256_xor_si256(idx, bias));
        let hit = _mm256_and_si256(lower, _mm256_cmpeq_epi32(cols, cwv));
        stats.blocks += 1;
        if _mm256_movemask_epi8(hit) != 0 {
            return true;
        }
        k += GATHER_LANES;
    }
    pins[k..].iter().any(|&u| {
        // SAFETY: in-bounds aligned 32-bit read.
        u < wv && *base.add(u as usize) == cw
    })
}

/// Batched color gather for the net-based marking pass: fills `out` with
/// `colors[pins[j]]` for every pin, so the (read-only) marking logic can
/// run over a local buffer.
///
/// Only valid for passes that do not write `colors` between the gather
/// and the last use of `out` on this thread — true for Algorithm 8's
/// marking pass, *not* for the conflict-removal pass (which clears colors
/// mid-scan and would diverge from the spec on duplicate pins).
pub(crate) fn gather_colors(
    colors: &Colors,
    pins: &[u32],
    out: &mut Vec<Color>,
    stats: &mut VecStats,
) {
    debug_assert!(pins.iter().all(|&u| (u as usize) < colors.len()));
    out.clear();
    out.reserve(pins.len());
    #[cfg(target_arch = "x86_64")]
    // SAFETY: has_gather() implies AVX2; pins are in-bounds.
    unsafe {
        gather_colors_avx2(colors.as_ptr(), pins, out, stats);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = stats;
        out.extend(pins.iter().map(|&u| colors.get(u as usize)));
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gather_colors_avx2(
    base: *const i32,
    pins: &[u32],
    out: &mut Vec<Color>,
    stats: &mut VecStats,
) {
    use std::arch::x86_64::*;
    let mut buf = [0i32; GATHER_LANES];
    let mut k = 0;
    while k + GATHER_LANES <= pins.len() {
        // SAFETY: 8 in-bounds indices; gathered addresses in-bounds.
        let idx = _mm256_loadu_si256(pins.as_ptr().add(k) as *const __m256i);
        let cols = _mm256_i32gather_epi32::<4>(base, idx);
        _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, cols);
        out.extend_from_slice(&buf);
        stats.blocks += 1;
        k += GATHER_LANES;
    }
    for &u in &pins[k..] {
        // SAFETY: in-bounds aligned 32-bit read.
        out.push(*base.add(u as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitStampSet;

    #[test]
    fn labels_roundtrip() {
        for k in KernelImpl::all() {
            assert_eq!(KernelImpl::from_name(k.label()), Some(k));
            assert_eq!(k.to_string(), k.label());
        }
        assert_eq!(KernelImpl::from_name("vector"), Some(KernelImpl::Simd));
        assert_eq!(KernelImpl::from_name("bogus"), None);
        assert_eq!(KernelImpl::default(), KernelImpl::Auto);
    }

    #[test]
    fn scalar_request_always_resolves_scalar() {
        assert_eq!(KernelImpl::Scalar.resolve(), ActiveKernel::Scalar);
        assert!(!ActiveKernel::Scalar.is_vector());
        assert!(!ActiveKernel::Scalar.has_gather());
    }

    #[test]
    fn resolution_is_stable_and_consistent_with_isa_string() {
        let k = KernelImpl::Auto.resolve();
        assert_eq!(k, KernelImpl::Simd.resolve());
        match k {
            ActiveKernel::Avx2 => assert_eq!(isa_features(), "sse2,avx2"),
            ActiveKernel::Sse2 => assert_eq!(isa_features(), "sse2"),
            ActiveKernel::Scalar => assert_eq!(isa_features(), "scalar"),
        }
    }

    /// On non-x86-64, the scalar fallback must be the only resolution —
    /// this is the cfg-gated acceptance check for the fallback arches.
    #[cfg(not(target_arch = "x86_64"))]
    #[test]
    fn non_x86_resolves_scalar() {
        for k in KernelImpl::all() {
            assert_eq!(k.resolve(), ActiveKernel::Scalar);
        }
        assert_eq!(isa_features(), "scalar");
    }

    #[test]
    fn first_fit_tiers_agree_on_dense_prefix() {
        // 0..N all forbidden: the scan must cross many full words.
        for n in [1usize, 63, 64, 65, 127, 128, 129, 200, 512] {
            let mut s = BitStampSet::with_capacity(n + 64);
            s.advance();
            for c in 0..n as Color {
                s.insert(c);
            }
            for from in [0, 1, 62, 63, 64, 65, 127, 128, n as Color] {
                let want = first_fit_words(s.raw_entries(), s.raw_mark(), from, ActiveKernel::Scalar);
                for k in [KernelImpl::Scalar.resolve(), KernelImpl::Simd.resolve()] {
                    assert_eq!(
                        first_fit_words(s.raw_entries(), s.raw_mark(), from, k),
                        want,
                        "n={n} from={from} kernel={}",
                        k.label()
                    );
                }
            }
        }
    }

    #[test]
    fn gather_paths_match_scalar_spec() {
        let colors = Colors::new(64);
        for u in 0..64 {
            if u % 3 != 0 {
                colors.set(u, (u % 7) as Color);
            }
        }
        let pins: Vec<u32> = (0..64).rev().collect();
        let mut stats = VecStats::default();

        // gather_mark vs the scalar loop, with and without a skip pin.
        for skip in [u32::MAX, 5, 63] {
            let mut vec_fb = BitStampSet::with_capacity(64);
            vec_fb.advance();
            gather_mark(&colors, &pins, skip, &mut vec_fb, &mut stats);
            let mut ref_fb = BitStampSet::with_capacity(64);
            ref_fb.advance();
            for &u in &pins {
                if u != skip {
                    let cu = colors.get(u as usize);
                    if cu != UNCOLORED {
                        ref_fb.insert(cu);
                    }
                }
            }
            for c in 0..16 {
                assert_eq!(vec_fb.contains(c), ref_fb.contains(c), "skip={skip} c={c}");
            }
        }

        // conflict_in_pins vs the scalar any-loop.
        for wv in [0u32, 7, 33, 64] {
            for cw in 0..8 {
                let want = pins.iter().any(|&u| u < wv && colors.get(u as usize) == cw);
                assert_eq!(
                    conflict_in_pins(&colors, &pins, wv, cw, &mut stats),
                    want,
                    "wv={wv} cw={cw}"
                );
            }
        }

        // gather_colors vs direct loads.
        let mut out = Vec::new();
        gather_colors(&colors, &pins, &mut out, &mut stats);
        let want: Vec<Color> = pins.iter().map(|&u| colors.get(u as usize)).collect();
        assert_eq!(out, want);
    }
}
