//! Costless color-balancing heuristics B1 and B2 (paper §V).
//!
//! First-fit concentrates vertices in the small color ids, leaving
//! thousands of near-empty color sets. The paper's two online heuristics
//! spread colors across `[0, colmax]` using only thread-private state — no
//! shared cardinality counters, hence "costless":
//!
//! * **B1** (Algorithm 11): alternate per vertex parity between a reverse
//!   first-fit from the thread's `colmax` and a plain first-fit from 0,
//!   extending the interval only when forced. Aims to keep the color count
//!   unchanged.
//! * **B2** (Algorithm 12): a rotating `colnext` cursor advances one color
//!   per vertex, with a floor of `colmax/3 + 1` to aggressively favor the
//!   upper part of the interval — better balance, ~10% more colors.

use crate::forbidden::ForbiddenSet;
use crate::Color;

/// Which balancing heuristic (if any) the coloring phase applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Balance {
    /// Plain first-fit (the paper's `-U` rows).
    Unbalanced,
    /// Algorithm 11 — parity-alternating, color-count-preserving.
    B1,
    /// Algorithm 12 — rotating cursor, aggressive balancing.
    B2,
}

impl Balance {
    /// Paper-style suffix for result labels.
    pub fn label(&self) -> &'static str {
        match self {
            Balance::Unbalanced => "U",
            Balance::B1 => "B1",
            Balance::B2 => "B2",
        }
    }
}

/// Thread-private balancer cursors. One per team thread, persisted across
/// the whole coloring run (the heuristics are *online*: their state spans
/// iterations).
#[derive(Clone, Copy, Debug, Default)]
pub struct BalancerState {
    /// Largest color this thread has used (`colmax`).
    pub colmax: Color,
    /// B2's rotating start cursor (`colnext`).
    pub colnext: Color,
}

impl BalancerState {
    /// Resets both cursors to the fresh-run state.
    ///
    /// The cursors are *per run*, not per thread lifetime: a `colmax`
    /// carried over from a previous coloring of a different graph skews
    /// B1's reverse-fit interval and B2's rotation floor, making
    /// back-to-back `color()` calls on a reused
    /// [`crate::ctx::ThreadCtx`] non-reproducible. Call this (or
    /// [`crate::ctx::ThreadCtx::reset_for_run`]) before every run that
    /// reuses a workspace.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl Balance {
    /// Chooses a color for entity `id` (vertex or net — B1 alternates on
    /// its parity) given the forbidden set `F`, updating the thread state.
    ///
    /// The returned color is never in `F` and never negative. Generic over
    /// the forbidden-set representation so both [`crate::StampSet`] and
    /// [`crate::BitStampSet`] kernels share the one implementation.
    #[inline]
    pub fn pick<F: ForbiddenSet>(&self, id: u32, fb: &F, st: &mut BalancerState) -> Color {
        let col = match self {
            Balance::Unbalanced => fb.first_fit_from(0),
            Balance::B1 => {
                // Alg. 11: even ids search downward from colmax; if the
                // whole interval is forbidden, extend it past colmax.
                if id.is_multiple_of(2) {
                    let down = fb.reverse_first_fit_from(st.colmax);
                    if down >= 0 {
                        down
                    } else {
                        fb.first_fit_from(st.colmax + 1)
                    }
                } else {
                    fb.first_fit_from(0)
                }
            }
            Balance::B2 => {
                // Alg. 12: rotate the start cursor; restart from 0 when the
                // pick would grow the interval.
                let up = fb.first_fit_from(st.colnext);
                if up > st.colmax {
                    fb.first_fit_from(0)
                } else {
                    up
                }
            }
        };
        st.colmax = st.colmax.max(col);
        if matches!(self, Balance::B2) {
            st.colnext = (col + 1).min(st.colmax / 3 + 1);
        }
        col
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StampSet;

    fn fb_with(colors: &[Color]) -> StampSet {
        let mut fb = StampSet::with_capacity(16);
        fb.advance();
        for &c in colors {
            fb.insert(c);
        }
        fb
    }

    #[test]
    fn unbalanced_is_first_fit() {
        let fb = fb_with(&[0, 1, 3]);
        let mut st = BalancerState::default();
        assert_eq!(Balance::Unbalanced.pick(0, &fb, &mut st), 2);
        assert_eq!(st.colmax, 2);
    }

    #[test]
    fn b1_even_ids_search_downward() {
        let fb = fb_with(&[4]);
        let mut st = BalancerState { colmax: 4, colnext: 0 };
        // even id: reverse from colmax=4, 4 forbidden -> 3
        assert_eq!(Balance::B1.pick(2, &fb, &mut st), 3);
        // odd id: plain first-fit -> 0
        assert_eq!(Balance::B1.pick(3, &fb, &mut st), 0);
    }

    #[test]
    fn b1_extends_interval_when_exhausted() {
        // Everything in [0, colmax] forbidden.
        let fb = fb_with(&[0, 1, 2]);
        let mut st = BalancerState { colmax: 2, colnext: 0 };
        let col = Balance::B1.pick(0, &fb, &mut st);
        assert_eq!(col, 3, "must extend past colmax");
        assert_eq!(st.colmax, 3);
    }

    #[test]
    fn b1_never_negative() {
        let fb = fb_with(&[]);
        let mut st = BalancerState::default();
        let col = Balance::B1.pick(0, &fb, &mut st);
        assert_eq!(col, 0);
    }

    #[test]
    fn b2_rotates_cursor() {
        let fb = fb_with(&[]);
        let mut st = BalancerState { colmax: 9, colnext: 5 };
        let col = Balance::B2.pick(0, &fb, &mut st);
        assert_eq!(col, 5);
        // colnext = min(6, 9/3 + 1 = 4) = 4
        assert_eq!(st.colnext, 4);
        let col = Balance::B2.pick(1, &fb, &mut st);
        assert_eq!(col, 4);
    }

    #[test]
    fn b2_restarts_from_zero_rather_than_growing() {
        let fb = fb_with(&[3]);
        let mut st = BalancerState { colmax: 3, colnext: 3 };
        // first-fit from 3 gives 4 > colmax, so restart at 0.
        let col = Balance::B2.pick(0, &fb, &mut st);
        assert_eq!(col, 0);
        assert_eq!(st.colmax, 3);
    }

    #[test]
    fn b2_grows_interval_when_everything_forbidden() {
        let fb = fb_with(&[0, 1, 2, 3]);
        let mut st = BalancerState { colmax: 3, colnext: 1 };
        let col = Balance::B2.pick(0, &fb, &mut st);
        // restart from 0 still lands past colmax; Alg. 12 accepts it.
        assert_eq!(col, 4);
        assert_eq!(st.colmax, 4);
    }

    #[test]
    fn labels() {
        assert_eq!(Balance::Unbalanced.label(), "U");
        assert_eq!(Balance::B1.label(), "B1");
        assert_eq!(Balance::B2.label(), "B2");
    }
}
