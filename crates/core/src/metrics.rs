//! Per-iteration timing and queue metrics.
//!
//! Figure 1 of the paper plots the coloring and conflict-removal time of
//! each speculative iteration; Table I reports the work-queue size left
//! after the first iteration. The runner records both for every run.

use std::time::Duration;

use crate::schedule::PhaseKind;
use crate::Color;

/// One thread's activity during one speculative iteration, split by phase.
///
/// The sheets are *deltas* of the team recorder's monotonic counters,
/// snapshotted by the runner around each phase — so
/// `color.get(trace::Counter::VerticesColored)` is exactly the number of
/// optimistic assignments this thread made in this iteration's coloring
/// phase. Only populated when a `trace::Recorder` is installed on the pool
/// (see [`par::Pool::set_tracer`]); empty slices mean tracing was off.
#[derive(Clone, Copy, Debug)]
pub struct ThreadIterStats {
    /// Team thread id.
    pub tid: usize,
    /// Counter deltas accumulated during the coloring phase.
    pub color: trace::CounterSheet,
    /// Counter deltas accumulated during the conflict-removal phase.
    pub conflict: trace::CounterSheet,
}

/// Measurements for one speculative iteration.
#[derive(Clone, Debug)]
pub struct IterationMetrics {
    /// 0-based iteration number.
    pub iter: usize,
    /// Work-queue size entering the iteration.
    pub queue_in: usize,
    /// Phase kind used for coloring.
    pub color_kind: PhaseKind,
    /// Phase kind used for conflict removal.
    pub conflict_kind: PhaseKind,
    /// Wall time of the coloring phase.
    pub color_time: Duration,
    /// Wall time of the conflict-removal phase.
    pub conflict_time: Duration,
    /// Work-queue size left for the next iteration (`|W_next|`).
    pub queue_out: usize,
    /// Per-thread counter slices for this iteration; empty when no
    /// recorder is installed (tracing is off by default).
    pub per_thread: Vec<ThreadIterStats>,
}

/// Which phase of the speculative loop a fault was contained in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailedPhase {
    /// The optimistic coloring phase.
    Color,
    /// The conflict-detection/removal phase.
    Conflict,
}

/// Why a run abandoned the parallel speculative loop and finished on the
/// sequential fallback path. The resulting coloring is still valid and
/// complete — degradation affects performance and determinism, not
/// correctness — but callers measuring speedups must know it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegradeReason {
    /// The liveness guard tripped: the queue was still non-empty after the
    /// configured iteration cap.
    IterationCap {
        /// The cap that was hit.
        cap: usize,
    },
    /// A team member panicked inside a parallel phase; the panic was
    /// contained and the run repaired sequentially.
    WorkerPanic {
        /// Phase the fault occurred in.
        phase: FailedPhase,
        /// Iteration number of the faulted phase.
        iter: usize,
        /// Captured panic message (first panicking thread).
        message: String,
    },
    /// The eager shared conflict queue overflowed: entries were dropped
    /// (see [`crate::workqueue::SharedQueue::dropped`]), meaning some
    /// conflict losers were never re-queued. The runner repairs the
    /// partial coloring sequentially, so the result is still valid.
    QueueOverflow {
        /// Iteration whose conflict drain discovered the overflow.
        iter: usize,
        /// Number of entries the queue rejected.
        dropped: usize,
    },
    /// The job's deadline passed (or its [`crate::CancelToken`] was
    /// tripped) mid-loop: the runner stopped speculating and repaired the
    /// best-so-far partial coloring sequentially. This is the graceful
    /// degradation contract of the serving layer — a timed-out job
    /// returns a valid, complete coloring instead of nothing.
    DeadlineExceeded {
        /// Iteration at which the deadline/cancellation was observed.
        iter: usize,
    },
}

impl std::fmt::Display for FailedPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailedPhase::Color => write!(f, "coloring phase"),
            FailedPhase::Conflict => write!(f, "conflict-removal phase"),
        }
    }
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::IterationCap { cap } => {
                write!(f, "iteration cap of {cap} reached with a non-empty queue")
            }
            DegradeReason::WorkerPanic {
                phase,
                iter,
                message,
            } => write!(f, "panic in {phase} (iteration {iter}): {message}"),
            DegradeReason::QueueOverflow { iter, dropped } => write!(
                f,
                "shared conflict queue overflowed (iteration {iter}): \
                 {dropped} entries dropped"
            ),
            DegradeReason::DeadlineExceeded { iter } => write!(
                f,
                "deadline exceeded (iteration {iter}): best-so-far coloring \
                 repaired sequentially"
            ),
        }
    }
}

/// One refinement the [`crate::engine::OnlineTuner`] applied between
/// speculative iterations, for logs and bench records. Actions are
/// performance hints only — the coloring stays valid whatever sequence of
/// actions fires.
#[derive(Clone, Debug, PartialEq)]
pub struct TunerAction {
    /// Iteration the refined schedule takes effect at.
    pub iter: usize,
    /// What changed.
    pub kind: TunerActionKind,
}

/// The kinds of between-iteration refinement the online tuner performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TunerActionKind {
    /// Remaining net phases truncated: the conflict residue was small
    /// enough that per-vertex phases touch far less memory.
    NetToVertex,
    /// Chunk scheduler flipped (imbalance or futile-steal signal).
    SwitchSched {
        /// Scheduler before the switch.
        from: par::Sched,
        /// Scheduler after the switch.
        to: par::Sched,
    },
    /// Chunk size shrunk in response to a high conflict rate.
    ShrinkChunk {
        /// Chunk size before.
        from: usize,
        /// Chunk size after.
        to: usize,
    },
}

impl std::fmt::Display for TunerAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            TunerActionKind::NetToVertex => {
                write!(f, "iter {}: net phases -> vertex", self.iter)
            }
            TunerActionKind::SwitchSched { from, to } => {
                write!(f, "iter {}: sched {from} -> {to}", self.iter)
            }
            TunerActionKind::ShrinkChunk { from, to } => {
                write!(f, "iter {}: chunk {from} -> {to}", self.iter)
            }
        }
    }
}

/// The outcome of a full coloring run.
#[derive(Clone, Debug)]
pub struct ColoringResult {
    /// Final color per vertex (all non-negative).
    pub colors: Vec<Color>,
    /// Number of distinct colors used.
    pub num_colors: usize,
    /// Per-iteration metrics, in order.
    pub iterations: Vec<IterationMetrics>,
    /// Total wall time of the speculative loop (excludes graph build and
    /// ordering, matching the paper's measurement boundary).
    pub total_time: Duration,
    /// `Some` when the run fell back to sequential completion (iteration
    /// cap or contained worker panic); `None` for a clean parallel run.
    pub degraded: Option<DegradeReason>,
    /// Refinements the online tuner applied between iterations; empty
    /// when no tuner was attached (see [`crate::RunnerOpts::online`]).
    pub tuner_actions: Vec<TunerAction>,
}

impl ColoringResult {
    /// Whether the run degraded to the sequential fallback path.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
    /// Sum of the coloring-phase times.
    pub fn color_time(&self) -> Duration {
        self.iterations.iter().map(|m| m.color_time).sum()
    }

    /// Sum of the conflict-removal-phase times.
    pub fn conflict_time(&self) -> Duration {
        self.iterations.iter().map(|m| m.conflict_time).sum()
    }

    /// Number of speculative iterations executed.
    pub fn rounds(&self) -> usize {
        self.iterations.len()
    }

    /// `|W_next|` after the first iteration (Table I's statistic).
    pub fn remaining_after_first(&self) -> usize {
        self.iterations.first().map(|m| m.queue_out).unwrap_or(0)
    }

    /// Merges the per-iteration [`ThreadIterStats`] into one counter sheet
    /// per thread (both phases summed) — the data behind the CLI's
    /// `--metrics` imbalance table. Empty when tracing was off.
    pub fn per_thread_totals(&self) -> Vec<trace::CounterSheet> {
        let threads = self
            .iterations
            .iter()
            .map(|m| m.per_thread.len())
            .max()
            .unwrap_or(0);
        let mut totals = vec![trace::CounterSheet::new(); threads];
        for m in &self.iterations {
            for t in &m.per_thread {
                totals[t.tid].merge(&t.color);
                totals[t.tid].merge(&t.conflict);
            }
        }
        totals
    }
}

/// Counts distinct colors in a coloring (ignores uncolored slots).
pub fn count_distinct_colors(colors: &[Color]) -> usize {
    let max = colors.iter().copied().max().unwrap_or(-1);
    if max < 0 {
        return 0;
    }
    let mut used = vec![false; max as usize + 1];
    for &c in colors {
        if c >= 0 {
            used[c as usize] = true;
        }
    }
    used.into_iter().filter(|&u| u).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(iter: usize, cms: u64, rms: u64, out: usize) -> IterationMetrics {
        IterationMetrics {
            iter,
            queue_in: 100,
            color_kind: PhaseKind::Vertex,
            conflict_kind: PhaseKind::Vertex,
            color_time: Duration::from_millis(cms),
            conflict_time: Duration::from_millis(rms),
            queue_out: out,
            per_thread: Vec::new(),
        }
    }

    #[test]
    fn aggregates() {
        let r = ColoringResult {
            colors: vec![0, 1, 0],
            num_colors: 2,
            iterations: vec![metric(0, 10, 5, 20), metric(1, 2, 1, 0)],
            total_time: Duration::from_millis(18),
            degraded: None,
            tuner_actions: Vec::new(),
        };
        assert_eq!(r.color_time(), Duration::from_millis(12));
        assert_eq!(r.conflict_time(), Duration::from_millis(6));
        assert_eq!(r.rounds(), 2);
        assert_eq!(r.remaining_after_first(), 20);
        assert!(!r.is_degraded());
    }

    #[test]
    fn degradation_is_reported() {
        let r = ColoringResult {
            colors: vec![0],
            num_colors: 1,
            iterations: vec![],
            total_time: Duration::ZERO,
            degraded: Some(DegradeReason::WorkerPanic {
                phase: FailedPhase::Color,
                iter: 3,
                message: "injected".into(),
            }),
            tuner_actions: Vec::new(),
        };
        assert!(r.is_degraded());
        match r.degraded.unwrap() {
            DegradeReason::WorkerPanic { phase, iter, .. } => {
                assert_eq!(phase, FailedPhase::Color);
                assert_eq!(iter, 3);
            }
            other => panic!("unexpected reason: {other:?}"),
        }
    }

    #[test]
    fn distinct_color_count() {
        assert_eq!(count_distinct_colors(&[0, 2, 2, 5]), 3);
        assert_eq!(count_distinct_colors(&[]), 0);
        assert_eq!(count_distinct_colors(&[-1, -1]), 0);
        assert_eq!(count_distinct_colors(&[-1, 3]), 1);
    }
}
