//! Net-based BGPC phases (Algorithms 6, 7 and 8) — the paper's
//! contribution.
//!
//! A BGPC conflict is, by definition, "two vertices of the same `vtxs` set
//! with the same color", so observing the graph from the nets' side visits
//! each pin exactly once per phase: every net-based pass is linear in the
//! graph size, versus the quadratic-in-net-size vertex-based traversal.
//! The price is optimism — threads only see conflicts local to the net they
//! are scanning — which the conflict-removal iterations repair.

use graph::BipartiteGraph;
use par::{Pool, Sched, ThreadScratch};
use sparse::CsrIndex;

use crate::ctx::ThreadCtx;
use crate::forbidden::ForbiddenSet;
use crate::simd;
use crate::{Balance, Color, Colors, UNCOLORED};

/// Dynamic chunk used for net-parallel loops. Nets vary in size far more
/// than vertices, so a modest chunk keeps the load balanced.
const NET_CHUNK: usize = 16;

/// Which net-based coloring algorithm to run. Table I of the paper
/// compares all three on their first-iteration conflict counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetColoringVariant {
    /// Algorithm 6 verbatim: single pass, immediate recolor, net-local
    /// *first-fit* — "the most optimistic", and measurably the most
    /// conflict-prone.
    SinglePassFirstFit,
    /// Algorithm 6 with the first-fit replaced by reverse first-fit from
    /// `|vtxs(v)| − 1` (Table I's "Alg. 6 + reverse" row).
    SinglePassReverse,
    /// Algorithm 8: a marking pass over the pin list, then reverse
    /// first-fit coloring of the local queue — the variant the schedules
    /// use.
    TwoPassReverse,
}

/// Net-based optimistic coloring: colors every currently uncolored (or
/// net-locally conflicting) vertex by scanning all nets in parallel.
///
/// Note the asymmetry with the vertex-based phase: the work queue is
/// implicit (any pin with `c[u] = −1`, plus in-net duplicates), and *all*
/// nets are traversed regardless of how small the queue is — which is why
/// schedules only run this for the first iteration or two.
///
/// `balance` applies the B1/B2 start-color policies to the net's local
/// color run (the paper: "the net-based variants are also similar").
pub fn color_workqueue_net<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    colors: &Colors,
    pool: &Pool,
    sched: Sched,
    variant: NetColoringVariant,
    balance: Balance,
    scratch: &ThreadScratch<ThreadCtx<F, I>>,
) {
    match variant {
        NetColoringVariant::SinglePassFirstFit => {
            color_net_single_pass(g, colors, pool, sched, scratch, false)
        }
        NetColoringVariant::SinglePassReverse => {
            color_net_single_pass(g, colors, pool, sched, scratch, true)
        }
        NetColoringVariant::TwoPassReverse => {
            color_net_two_pass(g, colors, pool, sched, scratch, balance)
        }
    }
}

/// Algorithm 6 (and its reverse-fit variant): one pass over each pin list,
/// recoloring on the spot.
fn color_net_single_pass<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    colors: &Colors,
    pool: &Pool,
    sched: Sched,
    scratch: &ThreadScratch<ThreadCtx<F, I>>,
    reverse: bool,
) {
    let rec = pool.tracer();
    pool.for_sched(sched, g.n_nets(), NET_CHUNK, |tid, range| {
        par::faults::fire("bgpc.color", tid);
        scratch.with(tid, |ctx| {
            let mut colored = 0u64;
            let mut probes = 0u64;
            for v in range {
                ctx.fb.advance();
                let mut col: Color = if reverse {
                    g.net_size(v) as Color - 1
                } else {
                    0
                };
                for &u in g.vtxs(v) {
                    let cu = colors.get(u as usize);
                    if cu == UNCOLORED || ctx.fb.contains(cu) {
                        // Recolor u with the net-local cursor policy.
                        if reverse {
                            col = ctx.fb.reverse_first_fit_from(col);
                            debug_assert!(col >= 0, "reverse fit underflow");
                        } else {
                            col = ctx.fb.first_fit_from(col);
                        }
                        colors.set(u as usize, col);
                        ctx.fb.insert(col);
                        if trace::COMPILED {
                            colored += 1;
                        }
                    } else {
                        ctx.fb.insert(cu);
                    }
                    if trace::COMPILED {
                        probes += 1;
                    }
                }
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::VerticesColored, colored);
                    local.add(trace::Counter::ForbiddenProbes, probes);
                    r.merge(tid, &local);
                }
            }
        });
    });
}

/// Algorithm 8: mark forbidden colors and collect `W_local` in a first
/// pass, then color `W_local` with reverse first-fit (or the B1/B2
/// adaptation) in a second pass.
fn color_net_two_pass<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    colors: &Colors,
    pool: &Pool,
    sched: Sched,
    scratch: &ThreadScratch<ThreadCtx<F, I>>,
    balance: Balance,
) {
    let rec = pool.tracer();
    pool.for_sched(sched, g.n_nets(), NET_CHUNK, |tid, range| {
        par::faults::fire("bgpc.color", tid);
        scratch.with(tid, |ctx| {
            let mut colored = 0u64;
            let mut probes = 0u64;
            let mut vstats = simd::VecStats::default();
            // The marking pass is read-only over `colors`, so the vector
            // path may batch-gather the pin colors up front. (The
            // single-pass variant and the conflict-removal pass write
            // colors mid-scan and must stay scalar — a pre-gathered
            // snapshot would diverge from the spec on duplicate pins.)
            let vector = ctx.kernel.has_gather();
            for v in range {
                ctx.fb.advance();
                ctx.wlocal.clear();
                let pins = g.vtxs(v);
                if vector && pins.len() >= simd::GATHER_LANES {
                    let mut gathered = std::mem::take(&mut ctx.gather);
                    simd::gather_colors(colors, pins, &mut gathered, &mut vstats);
                    for (&u, &cu) in pins.iter().zip(&gathered) {
                        if cu != UNCOLORED && !ctx.fb.contains(cu) {
                            ctx.fb.insert(cu);
                        } else {
                            ctx.wlocal.push(u);
                        }
                        if trace::COMPILED {
                            probes += 1;
                        }
                    }
                    ctx.gather = gathered;
                } else {
                    for &u in pins {
                        let cu = colors.get(u as usize);
                        if cu != UNCOLORED && !ctx.fb.contains(cu) {
                            ctx.fb.insert(cu);
                        } else {
                            ctx.wlocal.push(u);
                        }
                        if trace::COMPILED {
                            probes += 1;
                        }
                    }
                }
                if ctx.wlocal.is_empty() {
                    continue;
                }
                if trace::COMPILED {
                    colored += ctx.wlocal.len() as u64;
                }
                // Take the local queue so the second pass iterates a slice
                // (no per-element index bound check) while `ctx.fb` stays
                // mutably borrowable.
                let wlocal = std::mem::take(&mut ctx.wlocal);
                match balance {
                    Balance::Unbalanced => {
                        // Reverse first-fit from |vtxs(v)| − 1. Lemma 1:
                        // the cursor cannot underflow, because the scan
                        // skips at most |vtxs(v)| − |W_local| forbidden
                        // in-range colors and assigns |W_local| colors.
                        let mut col: Color = g.net_size(v) as Color - 1;
                        for &u in &wlocal {
                            col = ctx.fb.reverse_first_fit_from(col);
                            debug_assert!(col >= 0, "Lemma 1 violated");
                            colors.set(u as usize, col);
                            col -= 1;
                        }
                    }
                    Balance::B1 | Balance::B2 => {
                        // B1/B2 net adaptation: pick each local vertex's
                        // color with the thread's balancing cursors, and
                        // forbid it so the run stays distinct within the
                        // net.
                        for &u in &wlocal {
                            let col = balance.pick(v as u32, &ctx.fb, &mut ctx.balancer);
                            colors.set(u as usize, col);
                            ctx.fb.insert(col);
                        }
                    }
                }
                ctx.wlocal = wlocal;
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::VerticesColored, colored);
                    local.add(trace::Counter::ForbiddenProbes, probes);
                    local.add(trace::Counter::SimdPathHits, vstats.blocks);
                    r.merge(tid, &local);
                }
            }
        });
    });
}

/// Algorithm 7 — net-based conflict removal.
///
/// Scans every net once; the first pin holding a given color keeps it,
/// later pins with the same color are uncolored (`c[u] ← −1`). Detects all
/// conflicts in `O(|V| + |E|)` but "may remove more colorings than
/// required" — the optimism the paper accepts.
pub fn remove_conflicts_net<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    colors: &Colors,
    pool: &Pool,
    sched: Sched,
    scratch: &ThreadScratch<ThreadCtx<F, I>>,
) {
    let rec = pool.tracer();
    pool.for_sched(sched, g.n_nets(), NET_CHUNK, |tid, range| {
        par::faults::fire("bgpc.conflict", tid);
        scratch.with(tid, |ctx| {
            let mut conflicts = 0u64;
            let mut probes = 0u64;
            for v in range {
                ctx.fb.advance();
                for &u in g.vtxs(v) {
                    let cu = colors.get(u as usize);
                    if cu != UNCOLORED {
                        if ctx.fb.contains(cu) {
                            colors.clear(u as usize);
                            if trace::COMPILED {
                                conflicts += 1;
                            }
                        } else {
                            ctx.fb.insert(cu);
                            if trace::COMPILED {
                                probes += 1;
                            }
                        }
                    }
                }
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::ConflictsDetected, conflicts);
                    local.add(trace::Counter::ForbiddenProbes, probes);
                    r.merge(tid, &local);
                }
            }
        });
    });
}

/// Rebuilds the explicit work queue after a net-based conflict-removal
/// pass: the uncolored vertices, in the processing order given by `order`.
///
/// Static partitioning with per-thread buffers merged in thread order keeps
/// the result deterministic for a fixed coloring state.
pub fn collect_uncolored<F: ForbiddenSet, I: CsrIndex>(
    order: &[u32],
    colors: &Colors,
    pool: &Pool,
    scratch: &mut ThreadScratch<ThreadCtx<F, I>>,
) -> Vec<u32> {
    let scratch_ref: &ThreadScratch<ThreadCtx<F, I>> = scratch;
    pool.for_static(order.len(), |tid, range| {
        par::faults::fire("bgpc.conflict", tid);
        scratch_ref.with(tid, |ctx| {
            debug_assert!(ctx.local_queue.is_empty());
            for &u in &order[range] {
                if colors.get(u as usize) == UNCOLORED {
                    ctx.local_queue.push(u);
                }
            }
        });
    });
    crate::workqueue::merge_local_queues(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_bgpc;
    use sparse::Csr;

    fn scratch(t: usize) -> ThreadScratch<ThreadCtx> {
        ThreadScratch::new(t, |_| ThreadCtx::new(32))
    }

    fn overlapping() -> BipartiteGraph {
        // nets: {0,1,2}, {2,3}, {3,4,5}
        BipartiteGraph::from_matrix(&Csr::from_rows(
            6,
            &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]],
        ))
    }

    fn run_net_until_valid(
        g: &BipartiteGraph,
        pool: &Pool,
        variant: NetColoringVariant,
    ) -> Vec<i32> {
        let colors = Colors::new(g.n_vertices());
        let mut sc = scratch(pool.threads());
        let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let mut rounds = 0;
        loop {
            color_workqueue_net(
                g, &colors, pool, Sched::Dynamic, variant, Balance::Unbalanced, &sc,
            );
            remove_conflicts_net(g, &colors, pool, Sched::Dynamic, &sc);
            let w = collect_uncolored(&order, &colors, pool, &mut sc);
            if w.is_empty() {
                break;
            }
            rounds += 1;
            assert!(rounds < 100, "no convergence");
        }
        colors.snapshot()
    }

    #[test]
    fn two_pass_single_thread_valid() {
        let g = overlapping();
        let pool = Pool::new(1);
        let colors = run_net_until_valid(&g, &pool, NetColoringVariant::TwoPassReverse);
        verify_bgpc(&g, &colors).unwrap();
    }

    #[test]
    fn two_pass_parallel_valid() {
        let g = overlapping();
        let pool = Pool::new(4);
        let colors = run_net_until_valid(&g, &pool, NetColoringVariant::TwoPassReverse);
        verify_bgpc(&g, &colors).unwrap();
    }

    #[test]
    fn single_pass_variants_converge() {
        let g = overlapping();
        let pool = Pool::new(2);
        for variant in [
            NetColoringVariant::SinglePassFirstFit,
            NetColoringVariant::SinglePassReverse,
        ] {
            let colors = run_net_until_valid(&g, &pool, variant);
            verify_bgpc(&g, &colors).unwrap();
        }
    }

    #[test]
    fn two_pass_respects_lemma1_on_single_net() {
        // One net of k vertices colored by one thread: colors must be
        // exactly {0, …, k−1} (reverse first-fit from k−1).
        let g = BipartiteGraph::from_matrix(&Csr::from_rows(5, &[vec![0, 1, 2, 3, 4]]));
        let pool = Pool::new(1);
        let colors = Colors::new(5);
        let sc = scratch(1);
        color_workqueue_net(
            &g,
            &colors,
            &pool,
            Sched::Dynamic,
            NetColoringVariant::TwoPassReverse,
            Balance::Unbalanced,
            &sc,
        );
        let mut got = colors.snapshot();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        // Lemma 1: max color < max net size.
        assert!(got.iter().all(|&c| c < g.max_net_size() as i32));
    }

    #[test]
    fn conflict_removal_keeps_first_occurrence() {
        let g = BipartiteGraph::from_matrix(&Csr::from_rows(3, &[vec![0, 1, 2]]));
        let pool = Pool::new(1);
        let colors = Colors::new(3);
        colors.set(0, 5);
        colors.set(1, 5);
        colors.set(2, 3);
        let sc = scratch(1);
        remove_conflicts_net(&g, &colors, &pool, Sched::Dynamic, &sc);
        assert_eq!(colors.get(0), 5, "first pin keeps the color");
        assert_eq!(colors.get(1), UNCOLORED, "duplicate uncolored");
        assert_eq!(colors.get(2), 3);
    }

    #[test]
    fn collect_uncolored_preserves_order() {
        let g = overlapping();
        let pool = Pool::new(3);
        let colors = Colors::new(6);
        colors.set(1, 0);
        colors.set(4, 2);
        let mut sc = scratch(3);
        let order: Vec<u32> = vec![5, 4, 3, 2, 1, 0];
        let w = collect_uncolored(&order, &colors, &pool, &mut sc);
        assert_eq!(w, vec![5, 3, 2, 0]);
        let _ = g;
    }

    #[test]
    fn net_coloring_skips_validly_colored_vertices() {
        let g = BipartiteGraph::from_matrix(&Csr::from_rows(3, &[vec![0, 1, 2]]));
        let pool = Pool::new(1);
        let colors = Colors::new(3);
        colors.set(0, 0);
        colors.set(1, 1);
        colors.set(2, 2);
        let sc = scratch(1);
        color_workqueue_net(
            &g,
            &colors,
            &pool,
            Sched::Dynamic,
            NetColoringVariant::TwoPassReverse,
            Balance::Unbalanced,
            &sc,
        );
        assert_eq!(colors.snapshot(), vec![0, 1, 2], "valid colors untouched");
    }

    #[test]
    fn balanced_net_coloring_converges_via_vertex_phase() {
        // The paper never loops balanced *net* coloring: B1/B2 are applied
        // to N1-N2 / V-N2, where net coloring runs once and the vertex
        // phase finishes the job. Mirror that here: one balanced net round,
        // then vertex rounds to convergence.
        let m = sparse::gen::bipartite_uniform(15, 25, 150, 8);
        let g = BipartiteGraph::from_matrix(&m);
        for balance in [Balance::B1, Balance::B2] {
            let pool = Pool::new(2);
            let colors = Colors::new(g.n_vertices());
            let mut sc = scratch(2);
            let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
            color_workqueue_net(
                &g,
                &colors,
                &pool,
                Sched::Stealing,
                NetColoringVariant::TwoPassReverse,
                balance,
                &sc,
            );
            remove_conflicts_net(&g, &colors, &pool, Sched::Stealing, &sc);
            let mut w = collect_uncolored(&order, &colors, &pool, &mut sc);
            let mut rounds = 0;
            while !w.is_empty() {
                crate::vertex::color_workqueue_vertex(
                    &g, &w, &colors, &pool, 4, Sched::Stealing, balance, &sc,
                );
                w = crate::vertex::remove_conflicts_vertex(
                    &g, &w, &colors, &pool, 4, Sched::Stealing, None, &mut sc,
                );
                rounds += 1;
                assert!(rounds < 100);
            }
            verify_bgpc(&g, &colors.snapshot()).unwrap();
        }
    }
}
