//! `bgpc` — parallel bipartite-graph partial coloring and distance-2 graph
//! coloring, reproducing *"Greed is Good: Parallel Algorithms for
//! Bipartite-Graph Partial Coloring on Multicore Architectures"*
//! (Taş, Kaya, Saule — ICPP 2017).
//!
//! # Problems
//!
//! * **BGPC**: color the `V_A` side of a bipartite graph so that any two
//!   vertices sharing a net (`V_B` vertex) receive different colors. This is
//!   the column-coloring problem behind sparse Jacobian compression.
//! * **D2GC**: color a graph so each vertex differs from everything within
//!   distance 2 — the symmetric/Hessian variant.
//!
//! # The optimistic framework
//!
//! All parallel algorithms follow the speculative loop of the paper's
//! Algorithm 1: optimistically color the work queue in parallel, then detect
//! conflicts and re-queue losers, until the queue is empty. Both phases come
//! in a **vertex-based** flavor (walk `nets(w) → vtxs(v)` from each queued
//! vertex — the ColPack baseline) and a greedier **net-based** flavor (walk
//! each net's pin list once — this paper's contribution), combined into the
//! eight schedules of the evaluation (`V-V`, `V-V-64`, `V-V-64D`, `V-N∞`,
//! `V-N1`, `V-N2`, `N1-N2`, `N2-N2`).
//!
//! # Entry points
//!
//! * [`color_bgpc`] / [`seq::color_bgpc_seq`] — parallel / sequential BGPC.
//! * [`d2gc::color_d2gc`] / [`seq::color_d2gc_seq`] — parallel / sequential
//!   D2GC.
//! * [`Schedule`] — which algorithm combination to run ([`Schedule::all`]
//!   lists the paper's eight).
//! * [`Balance`] — the B1/B2 cardinality-balancing heuristics (§V).
//! * [`Engine`] — feature-driven config selection plus the
//!   [`OnlineTuner`] refinement loop (the `--autotune` path).
//! * [`verify`] — validity oracles and color-set statistics.
//!
//! ```
//! use bgpc::{color_bgpc, Schedule, verify};
//! use graph::{BipartiteGraph, Ordering};
//! use par::Pool;
//!
//! let matrix = sparse::gen::bipartite_uniform(64, 48, 512, 42);
//! let g = BipartiteGraph::from_matrix(&matrix);
//! let order = Ordering::Natural.vertex_order_bgpc(&g);
//! let pool = Pool::new(4);
//!
//! let result = color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
//! verify::verify_bgpc(&g, &result.colors).expect("coloring must be valid");
//! assert!(result.num_colors >= g.max_net_size());
//! ```

pub mod analysis;
pub mod balance;
pub mod cancel;
pub mod color;
pub mod ctx;
pub mod d1gc;
pub mod d2gc;
pub mod dkgc;
pub mod engine;
pub mod error;
pub mod forbidden;
pub mod incremental;
pub mod jp;
pub mod metrics;
pub mod net;
pub mod recolor;
pub mod runner;
pub mod schedule;
pub mod seq;
pub mod simd;
pub mod tuning;
pub mod verify;
pub mod vertex;
pub mod workqueue;

pub use balance::Balance;
pub use cancel::CancelToken;
pub use color::{Color, Colors, UNCOLORED};
pub use engine::{
    Engine, EngineChoice, EngineConfig, ForbiddenKind, InstanceFeatures, OnlineTuner,
    Overrides, ProblemKind,
};
pub use error::ColoringError;
pub use forbidden::{BitStampSet, ForbiddenSet, StampSet};
pub use incremental::{
    apply_delta, recolor_bgpc_incremental, recolor_d2gc_incremental, CsrDelta, DeltaApplied,
    DeltaError,
};
pub use metrics::{
    ColoringResult, DegradeReason, FailedPhase, IterationMetrics, TunerAction,
    TunerActionKind,
};
pub use runner::{
    color_bgpc, color_bgpc_with_opts, color_bgpc_with_set, try_color_bgpc, RunnerOpts,
};
pub use schedule::{PhaseKind, Schedule};
pub use simd::{ActiveKernel, KernelImpl};
