//! Cooperative cancellation for the speculative drivers.
//!
//! The speculative loop is iterative by construction, which makes it
//! naturally interruptible: the runners poll a [`CancelToken`] (and an
//! optional wall-clock deadline, see [`crate::RunnerOpts`]) between
//! iterations and, when tripped, repair the best-so-far partial coloring
//! into a valid, complete one instead of abandoning the job. The result is
//! tagged [`crate::DegradeReason::DeadlineExceeded`] — a timed-out job
//! still returns a usable coloring, just not the fully speculative one.
//!
//! Tokens are cheap to clone (one `Arc<AtomicBool>`) and safe to trip from
//! any thread — the serving layer hands one to a watchdog while the
//! coloring runs on the shared pool.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared one-way cancellation flag.
///
/// Once [`cancel`](CancelToken::cancel)ed a token stays cancelled; clones
/// observe the same flag.
///
/// ```
/// use bgpc::CancelToken;
/// let t = CancelToken::new();
/// let watcher = t.clone();
/// assert!(!watcher.is_cancelled());
/// t.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether any holder has tripped the flag.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
        // idempotent
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancel_is_visible_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        std::thread::spawn(move || c.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
