//! Determinism contracts: which results are bit-reproducible, and across
//! what variation. Sequential and single-thread paths must be exact;
//! Jones–Plassmann must be thread-count-invariant; multi-thread
//! speculative runs are *allowed* to vary, but their validated properties
//! (validity, lower bound) must not.

use bgpc::{Balance, Schedule};
use graph::{BipartiteGraph, Graph, Ordering};
use par::Pool;

fn bgpc_instance() -> BipartiteGraph {
    BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(80, 120, 1500, 11))
}

#[test]
fn sequential_bgpc_is_bit_reproducible() {
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let (a, ka) = bgpc::seq::color_bgpc_seq(&g, &order);
    let (b, kb) = bgpc::seq::color_bgpc_seq(&g, &order);
    assert_eq!(a, b);
    assert_eq!(ka, kb);
}

#[test]
fn single_thread_runs_are_reproducible_across_all_schedules() {
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(1);
    for schedule in Schedule::all() {
        let a = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        let b = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        assert_eq!(a.colors, b.colors, "{}", schedule.name());
        assert_eq!(a.rounds(), b.rounds(), "{}", schedule.name());
    }
}

#[test]
fn single_thread_balanced_runs_are_reproducible() {
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(1);
    for balance in [Balance::B1, Balance::B2] {
        let schedule = Schedule::n1_n2().with_balance(balance);
        let a = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        let b = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        assert_eq!(a.colors, b.colors, "{}", schedule.name());
    }
}

#[test]
fn jp_is_invariant_to_thread_count_and_chunking() {
    let g = bgpc_instance();
    let reference = bgpc::jp::color_bgpc_jp(&g, &Pool::new(1), 77);
    for threads in [2, 3, 8] {
        let r = bgpc::jp::color_bgpc_jp(&g, &Pool::new(threads), 77);
        assert_eq!(r.colors, reference.colors, "threads {threads}");
        assert_eq!(r.rounds, reference.rounds);
    }
}

#[test]
fn dataset_generation_is_platform_stable() {
    // Fixed fingerprint of a generated instance: catches accidental RNG
    // or generator changes that would silently invalidate EXPERIMENTS.md.
    let m = sparse::Dataset::CoPapersDblp.build(0.002, 20170814).matrix;
    let fingerprint: u64 = m
        .iter()
        .fold(0u64, |acc, (i, j)| {
            acc.wrapping_mul(1_000_003)
                .wrapping_add((i as u64) << 32 | j as u64)
        });
    let again = sparse::Dataset::CoPapersDblp.build(0.002, 20170814).matrix;
    let fp2: u64 = again
        .iter()
        .fold(0u64, |acc, (i, j)| {
            acc.wrapping_mul(1_000_003)
                .wrapping_add((i as u64) << 32 | j as u64)
        });
    assert_eq!(fingerprint, fp2);
    assert_eq!(m.nnz(), again.nnz());
}

#[test]
fn orderings_are_deterministic() {
    let g = bgpc_instance();
    for ordering in [
        Ordering::Natural,
        Ordering::Random(42),
        Ordering::LargestFirst,
        Ordering::SmallestLast,
        Ordering::IncidenceDegree,
    ] {
        assert_eq!(
            ordering.vertex_order_bgpc(&g),
            ordering.vertex_order_bgpc(&g),
            "{}",
            ordering.label()
        );
    }
}

#[test]
fn multithreaded_runs_vary_but_invariants_hold() {
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(8);
    for _ in 0..10 {
        let r = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
        bgpc::verify::verify_bgpc(&g, &r.colors).unwrap();
        assert!(r.num_colors >= g.max_net_size());
    }
}

#[test]
fn d2gc_sequential_reproducible() {
    let m = sparse::gen::grid2d(10, 10, 1);
    let g = Graph::from_symmetric_matrix(&m);
    let order = Ordering::SmallestLast.vertex_order_d2(&g);
    let (a, _) = bgpc::seq::color_d2gc_seq(&g, &order);
    let (b, _) = bgpc::seq::color_d2gc_seq(&g, &order);
    assert_eq!(a, b);
}
