//! Property test: [`bgpc::StampSet`] and [`bgpc::BitStampSet`] are
//! observationally equivalent under every operation sequence.
//!
//! The word-packed bitset is the production representation; the per-color
//! stamp array is the executable specification. A random interleaving of
//! `advance` / `insert` / `contains` / `first_fit_from` /
//! `reverse_first_fit_from` must produce identical answers from both,
//! including across epoch boundaries (stale-word reuse) and 64-bit word
//! boundaries.

use bgpc::{BitStampSet, ForbiddenSet, KernelImpl, StampSet};
use minicheck::{check, prop_assert};

/// Colors reach past several 64-bit words and past the initial capacity so
/// word-boundary and growth paths are exercised.
const MAX_COLOR: u32 = 300;

#[test]
fn stamp_and_bitstamp_sets_agree_on_random_op_sequences() {
    check("forbidden_set_equivalence", 256, |g| {
        let cap = g.usize_in(1..80);
        let mut spec = StampSet::with_capacity(cap);
        let mut bits = BitStampSet::with_capacity(cap);
        let ops = g.usize_in(1..120);
        for step in 0..ops {
            match g.usize_in(0..5) {
                0 => {
                    spec.advance();
                    bits.advance();
                }
                1 => {
                    let c = g.u32_in(0..MAX_COLOR) as i32;
                    spec.insert(c);
                    bits.insert(c);
                }
                2 => {
                    let c = g.u32_in(0..MAX_COLOR + 64) as i32;
                    prop_assert!(
                        spec.contains(c) == bits.contains(c),
                        "contains({c}) diverged at step {step}"
                    );
                }
                3 => {
                    let from = g.u32_in(0..MAX_COLOR + 64) as i32;
                    prop_assert!(
                        spec.first_fit_from(from) == bits.first_fit_from(from),
                        "first_fit_from({from}) diverged at step {step}: spec {}, bits {}",
                        spec.first_fit_from(from),
                        bits.first_fit_from(from)
                    );
                }
                _ => {
                    let from = g.u32_in(0..MAX_COLOR + 64) as i32 - 1;
                    prop_assert!(
                        spec.reverse_first_fit_from(from) == bits.reverse_first_fit_from(from),
                        "reverse_first_fit_from({from}) diverged at step {step}: spec {}, bits {}",
                        spec.reverse_first_fit_from(from),
                        bits.reverse_first_fit_from(from)
                    );
                }
            }
        }
        Ok(())
    });
}

#[test]
fn scalar_and_simd_first_fit_agree_on_random_states() {
    // The vectorized first-fit word scans (SSE2/AVX2 where available)
    // must be bit-identical to the scalar spec on every state the
    // kernels can produce, including stale epochs and the 64/128-color
    // word boundaries where the multi-word probes start and stop.
    check("first_fit_kernel_equivalence", 256, |g| {
        let cap = g.usize_in(1..200);
        let mut scalar = BitStampSet::with_capacity(cap);
        let mut simd = BitStampSet::with_capacity(cap);
        scalar.set_kernel(KernelImpl::Scalar);
        simd.set_kernel(KernelImpl::Simd);
        let epochs = g.usize_in(1..4);
        for _ in 0..epochs {
            scalar.advance();
            simd.advance();
            // Bias toward dense prefixes so the scan regularly crosses
            // several saturated words before finding a free bit.
            let dense = g.usize_in(0..MAX_COLOR as usize);
            for c in 0..dense as i32 {
                scalar.insert(c);
                simd.insert(c);
            }
            let scattered = g.usize_in(0..40);
            for _ in 0..scattered {
                let c = g.u32_in(0..MAX_COLOR) as i32;
                scalar.insert(c);
                simd.insert(c);
            }
            for from in [0, 1, 62, 63, 64, 65, 126, 127, 128, 129, 191, 192] {
                prop_assert!(
                    scalar.first_fit_from(from) == simd.first_fit_from(from),
                    "first_fit_from({from}) diverged: scalar {}, simd {}",
                    scalar.first_fit_from(from),
                    simd.first_fit_from(from)
                );
            }
            let from = g.u32_in(0..MAX_COLOR + 64) as i32;
            prop_assert!(
                scalar.first_fit_from(from) == simd.first_fit_from(from),
                "first_fit_from({from}) diverged: scalar {}, simd {}",
                scalar.first_fit_from(from),
                simd.first_fit_from(from)
            );
        }
        Ok(())
    });
}

#[test]
fn scalar_and_simd_first_fit_agree_on_exact_word_boundaries() {
    // Deterministic boundary battery: prefixes 0..n fully forbidden for n
    // around every word edge the 1/2/4-word probes care about.
    for n in [63usize, 64, 65, 127, 128, 129, 255, 256, 257, 320] {
        let mut scalar = BitStampSet::with_capacity(n + 64);
        let mut simd = BitStampSet::with_capacity(n + 64);
        scalar.set_kernel(KernelImpl::Scalar);
        simd.set_kernel(KernelImpl::Simd);
        scalar.advance();
        simd.advance();
        for c in 0..n as i32 {
            scalar.insert(c);
            simd.insert(c);
        }
        for from in 0..=(n as i32 + 1) {
            assert_eq!(
                scalar.first_fit_from(from),
                simd.first_fit_from(from),
                "dense prefix {n}, from {from}"
            );
        }
    }
}

#[test]
fn first_fit_results_are_never_forbidden() {
    check("first_fit_soundness", 256, |g| {
        let mut bits = BitStampSet::with_capacity(g.usize_in(1..64));
        bits.advance();
        let inserts = g.usize_in(0..90);
        for _ in 0..inserts {
            bits.insert(g.u32_in(0..MAX_COLOR) as i32);
        }
        let from = g.u32_in(0..MAX_COLOR) as i32;
        let ff = bits.first_fit_from(from);
        minicheck::prop_assert!(ff >= from, "first fit went backwards");
        minicheck::prop_assert!(!bits.contains(ff), "first fit picked a forbidden color");
        let rev = bits.reverse_first_fit_from(from);
        if rev >= 0 {
            minicheck::prop_assert!(rev <= from, "reverse fit went forwards");
            minicheck::prop_assert!(!bits.contains(rev), "reverse fit picked forbidden");
        } else {
            // UNCOLORED means every color in [0, from] is forbidden.
            for c in 0..=from {
                minicheck::prop_assert!(bits.contains(c), "reverse fit missed free {c}");
            }
        }
        Ok(())
    });
}
