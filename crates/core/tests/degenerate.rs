//! Degenerate-instance coverage: every schedule × both chunk schedulers
//! on the shapes most likely to break boundary arithmetic — an empty
//! `V_A`, isolated (pin-less) nets and net-less vertices, a single
//! vertex, a star (one net covering everything), and nets sized exactly
//! on the 128-color forbidden-set dispatch boundary — plus the
//! degenerate-*delta* battery for the incremental engine (empty batch,
//! duplicate edge, delete-nonexistent).

use bgpc::incremental::{apply_delta, recolor_bgpc_incremental, CsrDelta, DeltaError};
use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{RunnerOpts, Schedule};
use graph::{BipartiteGraph, Graph, Ordering};
use par::{Pool, Sched};
use sparse::Csr;

/// Every BGPC schedule in every chunk-scheduler flavor.
fn all_configs() -> Vec<Schedule> {
    let mut v = Vec::new();
    for s in Schedule::all() {
        for sched in Sched::all() {
            v.push(s.clone().with_sched(sched));
        }
    }
    v
}

/// Runs every configuration on the instance and verifies each result.
/// Returns the distinct-color counts observed (one per configuration).
fn run_all_bgpc(m: &Csr, threads: usize) -> Vec<usize> {
    let g = BipartiteGraph::from_matrix(m);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(threads);
    all_configs()
        .iter()
        .map(|schedule| {
            let res = bgpc::color_bgpc(&g, &order, schedule, &pool);
            verify_bgpc(&g, &res.colors)
                .unwrap_or_else(|e| panic!("{} invalid on degenerate instance: {e}", schedule.name()));
            assert!(
                res.degraded.is_none(),
                "{} degraded on a degenerate instance: {:?}",
                schedule.name(),
                res.degraded
            );
            res.num_colors
        })
        .collect()
}

#[test]
fn empty_vertex_side() {
    // No vertices at all: nothing to color, nothing to verify, and no
    // schedule may loop, panic or divide by the empty order.
    let m = Csr::from_rows(0, &[]);
    for k in run_all_bgpc(&m, 4) {
        assert_eq!(k, 0, "an empty V_A has zero colors");
    }
}

#[test]
fn isolated_nets_and_vertices() {
    // Nets 0 and 2 have no pins; vertices 2 and 3 belong to no net.
    // Pin-less nets must not corrupt net-based phases, and net-less
    // vertices must still be colored (color 0 is always legal for them).
    let m = Csr::from_rows(4, &[vec![], vec![0, 1], vec![]]);
    for k in run_all_bgpc(&m, 4) {
        assert_eq!(k, 2, "only the shared net forces a second color");
    }
}

#[test]
fn single_vertex_single_net() {
    let m = Csr::from_rows(1, &[vec![0]]);
    for k in run_all_bgpc(&m, 4) {
        assert_eq!(k, 1);
    }
}

#[test]
fn star_net_forces_all_distinct() {
    // One net covering every vertex: the distance-2 graph is complete, so
    // every schedule must use exactly n colors.
    let n = 23;
    let m = Csr::from_rows(n, &[(0..n as u32).collect()]);
    for k in run_all_bgpc(&m, 4) {
        assert_eq!(k, n);
    }
}

#[test]
fn net_size_on_the_dense_dispatch_boundary() {
    // The runner dispatches to the word-packed bitset at max_net_size ≤
    // 128 and the stamp array above it. A star of exactly 128 pins
    // exercises the last bitset instance (needing colors 0..=127, the
    // full bitmap), 129 the first stamp instance — both must produce
    // exactly net-size colors on every schedule.
    for n in [128usize, 129] {
        let m = Csr::from_rows(n, &[(0..n as u32).collect()]);
        for k in run_all_bgpc(&m, 4) {
            assert_eq!(k, n, "star of {n} pins must need {n} colors");
        }
    }
}

/// Every D2GC schedule in both chunk-scheduler flavors.
fn run_all_d2gc(m: &Csr, threads: usize) -> Vec<usize> {
    let g = Graph::from_symmetric_matrix(m);
    let order = Ordering::Natural.vertex_order_d2(&g);
    let pool = Pool::new(threads);
    let mut out = Vec::new();
    for s in Schedule::d2gc_set() {
        for sched in Sched::all() {
            let schedule = s.clone().with_sched(sched);
            let res = bgpc::d2gc::color_d2gc(&g, &order, &schedule, &pool);
            verify_d2gc(&g, &res.colors)
                .unwrap_or_else(|e| panic!("{} invalid on degenerate instance: {e}", schedule.name()));
            assert!(res.degraded.is_none(), "{} degraded", schedule.name());
            out.push(res.num_colors);
        }
    }
    out
}

#[test]
fn empty_delta_is_a_noop_on_every_degenerate_shape() {
    // Applying the empty batch must return the identical pattern and an
    // empty dirty set even on the shapes above — and a seeded recolor
    // with that empty dirty set must return the base coloring unchanged
    // in zero iterations on every schedule × chunk scheduler.
    let shapes = [
        Csr::from_rows(0, &[]),
        Csr::from_rows(4, &[vec![], vec![0, 1], vec![]]),
        Csr::from_rows(1, &[vec![0]]),
        Csr::from_rows(23, &[(0..23).collect()]),
    ];
    let pool = Pool::new(4);
    for m in &shapes {
        let applied = apply_delta(m, &CsrDelta::empty()).unwrap();
        assert_eq!(&applied.matrix, m);
        assert!(applied.dirty_bgpc().is_empty());
        assert!(applied.dirty_d2gc().is_empty());

        let g = BipartiteGraph::from_matrix(m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        for schedule in all_configs() {
            let base = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            let r = recolor_bgpc_incremental(
                &g,
                &base.colors,
                applied.dirty_bgpc(),
                &order,
                &schedule,
                &pool,
                RunnerOpts::default(),
            );
            assert_eq!(r.colors, base.colors, "{}", schedule.name());
            assert_eq!(r.rounds(), 0, "{}", schedule.name());
        }
    }
}

#[test]
fn degenerate_deltas_report_typed_errors() {
    let m = Csr::from_rows(4, &[vec![], vec![0, 1], vec![]]);
    // Duplicate edge in a batch is rejected at construction.
    assert_eq!(
        CsrDelta::try_new(vec![(0, 3), (0, 3)], vec![]),
        Err(DeltaError::DuplicateInsertion { row: 0, col: 3 }),
    );
    // Deleting a nonexistent edge is rejected at application — including
    // from a pin-less net, where the row merge has no base entries.
    let d = CsrDelta::try_new(vec![], vec![(0, 2)]).unwrap();
    assert_eq!(
        apply_delta(&m, &d),
        Err(DeltaError::EdgeNotPresent { row: 0, col: 2 }),
    );
    // Inserting into a pin-less net and deleting the last pin of a net
    // are both fine and leave a valid pattern.
    let d = CsrDelta::try_new(vec![(2, 0)], vec![(1, 0), (1, 1)]).unwrap();
    let applied = apply_delta(&m, &d).unwrap();
    applied.matrix.validate().unwrap();
    assert_eq!(applied.matrix.row(1), &[] as &[u32]);
    assert_eq!(applied.matrix.row(2), &[0]);
}

#[test]
fn d2gc_single_vertex_and_edgeless() {
    // A single vertex and an edgeless 5-vertex graph: distance-2
    // coloring needs exactly one color in both.
    for m in [Csr::empty(1, 1), Csr::empty(5, 5)] {
        for k in run_all_d2gc(&m, 4) {
            assert_eq!(k, 1);
        }
    }
}

#[test]
fn d2gc_star_on_the_dense_dispatch_boundary() {
    // A star with hub degree exactly 128 (the bitset/stamp dispatch
    // boundary) and 129: all leaves are pairwise distance-2 via the hub,
    // so every vertex needs its own color.
    for leaves in [128usize, 129] {
        let n = leaves + 1;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|v| {
                if v == 0 {
                    (1..n as u32).collect()
                } else {
                    vec![0]
                }
            })
            .collect();
        let m = Csr::from_rows(n, &rows);
        for k in run_all_d2gc(&m, 4) {
            assert_eq!(k, n, "star with {leaves} leaves needs {n} colors");
        }
    }
}
