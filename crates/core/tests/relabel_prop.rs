//! Property test: relabel → color → invert-permutation round-trips.
//!
//! For random bipartite instances, every locality relabeling
//! ([`LocalityOrder`]), at both row-pointer widths (u32 and u64), and
//! under both chunk schedulers: coloring the *relabeled* instance and
//! mapping the result back through the permutation must yield a coloring
//! that [`bgpc::verify::verify_bgpc`] accepts on the *original* graph.
//! This pins the `perm[old] = new` convention end to end — a transposed
//! permutation or an un-inverted mapping makes the oracle reject.

use bgpc::verify::verify_bgpc;
use bgpc::Schedule;
use graph::BipartiteGraph;
use minicheck::{check, prop_assert};
use par::{Pool, Sched};
use sparse::{unpermute, Csr, CsrIndex, IndexWidth, LocalityOrder};

/// Colors the relabeled pattern at width `I` and returns the coloring
/// mapped back to original column ids.
fn color_relabeled<I: CsrIndex>(
    pm: &Csr<I>,
    perm: &Option<Vec<u32>>,
    schedule: &Schedule,
    pool: &Pool,
) -> Vec<i32> {
    let g = BipartiteGraph::try_from_matrix(pm).expect("relabeled pattern stays valid");
    let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    let r = bgpc::color_bgpc(&g, &order, schedule, pool);
    assert!(!r.is_degraded(), "no faults armed, so no degradation");
    match perm {
        Some(p) => unpermute(&r.colors, p),
        None => r.colors,
    }
}

#[test]
fn relabeled_colorings_verify_on_the_original_graph() {
    let pool = Pool::new(3);
    check("relabel_color_roundtrip", 48, |g| {
        let nets = g.usize_in(1..30);
        let verts = g.usize_in(2..40);
        let nnz = g.usize_in(1..(nets * verts).min(250));
        let seed = g.u64_in(0..1 << 32);
        let m = sparse::gen::bipartite_uniform(nets, verts, nnz, seed);
        let g0 = BipartiteGraph::from_matrix(&m);

        let schedule = if g.bool_with(0.5) {
            Schedule::v_v_64d()
        } else {
            Schedule::n1_n2()
        }
        .with_sched(if g.bool_with(0.5) {
            Sched::Dynamic
        } else {
            Sched::Stealing
        });

        for relabel in LocalityOrder::all() {
            let (pm, perm) = relabel.apply_columns(&m);
            prop_assert!(
                perm.is_some() == (relabel != LocalityOrder::None),
                "identity relabeling must not fabricate a permutation"
            );
            for width in [IndexWidth::U32, IndexWidth::U64] {
                let colors = match width {
                    IndexWidth::U32 => color_relabeled(&pm, &perm, &schedule, &pool),
                    IndexWidth::U64 => {
                        color_relabeled(&pm.to_index::<u64>(), &perm, &schedule, &pool)
                    }
                };
                let ok = verify_bgpc(&g0, &colors);
                prop_assert!(
                    ok.is_ok(),
                    "{}/{}/{} coloring invalid on the original graph: {}",
                    relabel.label(),
                    width.label(),
                    schedule.sched,
                    ok.unwrap_err()
                );
            }
        }
        Ok(())
    });
}

#[test]
fn relabeled_d2gc_colorings_verify_on_the_original_graph() {
    let pool = Pool::new(3);
    check("relabel_d2gc_roundtrip", 24, |g| {
        let n = g.usize_in(2..40);
        let max_edges = (n * (n - 1) / 2).max(2);
        let edges = g.usize_in(1..max_edges.min(120));
        let seed = g.u64_in(0..1 << 32);
        let m = sparse::gen::erdos_renyi(n, edges, seed);
        let g0 = graph::Graph::from_symmetric_matrix(&m);
        let schedule = Schedule::v_v_64d().with_sched(Sched::Stealing);

        for relabel in LocalityOrder::all() {
            let (pm, perm) = relabel.apply_symmetric(&m);
            for width in [IndexWidth::U32, IndexWidth::U64] {
                fn d2_colors<I: CsrIndex>(
                    pm: &Csr<I>,
                    schedule: &Schedule,
                    pool: &Pool,
                ) -> Vec<i32> {
                    let gp = graph::Graph::from_symmetric_matrix(pm);
                    let order: Vec<u32> = (0..gp.n_vertices() as u32).collect();
                    bgpc::d2gc::color_d2gc(&gp, &order, schedule, pool).colors
                }
                let colors = match width {
                    IndexWidth::U32 => d2_colors(&pm, &schedule, &pool),
                    IndexWidth::U64 => d2_colors(&pm.to_index::<u64>(), &schedule, &pool),
                };
                let colors = match &perm {
                    Some(p) => unpermute(&colors, p),
                    None => colors,
                };
                let ok = bgpc::verify::verify_d2gc(&g0, &colors);
                prop_assert!(
                    ok.is_ok(),
                    "{}/{} d2gc coloring invalid on the original graph: {}",
                    relabel.label(),
                    width.label(),
                    ok.unwrap_err()
                );
            }
        }
        Ok(())
    });
}
