//! Fault-injection tests: panics and stalls are injected into the color
//! and conflict phases via the `par::faults` registry, and every hybrid
//! schedule must recover — producing a *valid, complete* coloring with the
//! degradation reported in [`ColoringResult::degraded`] instead of an
//! aborted process.
//!
//! The fail-point registry is process-global and the points here share
//! names across tests, so every test serializes on `SERIAL`.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use bgpc::d2gc::{color_d2gc, color_d2gc_with_opts};
use bgpc::metrics::{DegradeReason, FailedPhase};
use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{color_bgpc, color_bgpc_with_opts, ColoringResult, RunnerOpts, Schedule};
use graph::{BipartiteGraph, Graph, Ordering};
use par::faults::{self, FaultAction};
use par::{Pool, Sched};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn bgpc_instance() -> BipartiteGraph {
    BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(60, 90, 1200, 11))
}

fn d2gc_instance() -> Graph {
    Graph::from_symmetric_matrix(&sparse::gen::grid2d(10, 10, 1))
}

fn assert_degraded_panic(r: &ColoringResult, phase: FailedPhase, ctx: &str) {
    match &r.degraded {
        Some(DegradeReason::WorkerPanic {
            phase: p, message, ..
        }) => {
            assert_eq!(*p, phase, "{ctx}: wrong phase");
            assert!(
                message.contains("fail point"),
                "{ctx}: message should name the fail point, got `{message}`"
            );
        }
        other => panic!("{ctx}: expected WorkerPanic degradation, got {other:?}"),
    }
}

#[test]
fn bgpc_color_phase_panic_recovers_on_every_schedule() {
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    for base in Schedule::all() {
        for sched in Sched::all() {
            let schedule = base.clone().with_sched(sched);
            faults::arm("bgpc.color", FaultAction::Panic);
            let r = color_bgpc(&g, &order, &schedule, &pool);
            faults::reset();
            let ctx = format!("{}/{sched}", schedule.name());
            assert_degraded_panic(&r, FailedPhase::Color, &ctx);
            verify_bgpc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{ctx}: repaired coloring invalid: {e}"));
            assert!(r.num_colors >= g.max_net_size(), "{ctx}");
        }
    }
}

#[test]
fn bgpc_conflict_phase_panic_recovers_on_every_schedule() {
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    for base in Schedule::all() {
        for sched in Sched::all() {
            let schedule = base.clone().with_sched(sched);
            faults::arm("bgpc.conflict", FaultAction::Panic);
            let r = color_bgpc(&g, &order, &schedule, &pool);
            faults::reset();
            let ctx = format!("{}/{sched}", schedule.name());
            assert_degraded_panic(&r, FailedPhase::Conflict, &ctx);
            verify_bgpc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{ctx}: repaired coloring invalid: {e}"));
        }
    }
}

#[test]
fn bgpc_specific_worker_panic_mid_region_recovers() {
    let _g = serial();
    // Large enough that the master cannot drain the dynamic queue before
    // the other team threads wake up and grab chunks.
    let g = BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(4000, 2000, 40000, 7));
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    // Panic only team thread 2: the other three threads keep working the
    // region to completion before the fault is reported. Dynamic chunking
    // cannot *guarantee* thread 2 grabs work before the master drains the
    // queue, so retry until the point actually fires (every run, fired or
    // not, must still produce a valid coloring).
    let mut faulted = None;
    for _ in 0..50 {
        faults::arm_with("bgpc.color", FaultAction::Panic, 1, Some(2));
        let r = color_bgpc(&g, &order, &Schedule::v_v(), &pool);
        let fired = faults::hits("bgpc.color") > 0;
        faults::reset();
        verify_bgpc(&g, &r.colors).expect("coloring must be valid, fault or not");
        if fired {
            faulted = Some(r);
            break;
        }
        assert!(!r.is_degraded(), "no fault fired, so no degradation");
    }
    let r = faulted.expect("thread 2 never grabbed a chunk in 50 runs");
    assert_degraded_panic(&r, FailedPhase::Color, "V-V worker 2");
    // The same pool must run a clean (non-degraded) region afterwards.
    let clean = color_bgpc(&g, &order, &Schedule::v_v(), &pool);
    assert!(
        !clean.is_degraded(),
        "pool must fully recover after containment"
    );
    verify_bgpc(&g, &clean.colors).unwrap();
}

#[test]
fn bgpc_stall_injection_slows_but_does_not_degrade() {
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    faults::arm_with(
        "bgpc.color",
        FaultAction::Stall(Duration::from_millis(25)),
        3,
        None,
    );
    let r = color_bgpc(&g, &order, &Schedule::n2_n2(), &pool);
    let fired = faults::hits("bgpc.color");
    faults::reset();
    assert!(fired >= 1, "stall point must fire");
    assert!(!r.is_degraded(), "a stall is slow, not a fault");
    assert!(r.total_time >= Duration::from_millis(25));
    verify_bgpc(&g, &r.colors).unwrap();
}

#[test]
fn d2gc_color_phase_panic_recovers_on_schedule_set() {
    let _g = serial();
    let g = d2gc_instance();
    let order = Ordering::Natural.vertex_order_d2(&g);
    let pool = Pool::new(4);
    for base in Schedule::d2gc_set() {
        for sched in Sched::all() {
            let schedule = base.clone().with_sched(sched);
            faults::arm("d2gc.color", FaultAction::Panic);
            let r = color_d2gc(&g, &order, &schedule, &pool);
            faults::reset();
            let ctx = format!("{}/{sched}", schedule.name());
            assert_degraded_panic(&r, FailedPhase::Color, &ctx);
            verify_d2gc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{ctx}: repaired coloring invalid: {e}"));
        }
    }
}

#[test]
fn d2gc_conflict_phase_panic_recovers_on_schedule_set() {
    let _g = serial();
    let g = d2gc_instance();
    let order = Ordering::Natural.vertex_order_d2(&g);
    let pool = Pool::new(4);
    for base in Schedule::d2gc_set() {
        for sched in Sched::all() {
            let schedule = base.clone().with_sched(sched);
            faults::arm("d2gc.conflict", FaultAction::Panic);
            let r = color_d2gc(&g, &order, &schedule, &pool);
            faults::reset();
            let ctx = format!("{}/{sched}", schedule.name());
            assert_degraded_panic(&r, FailedPhase::Conflict, &ctx);
            verify_d2gc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{ctx}: repaired coloring invalid: {e}"));
        }
    }
}

#[test]
fn single_thread_pool_contains_inline_panic() {
    let _g = serial();
    // With one thread the caller itself runs the kernel; containment must
    // still catch the unwind at the phase boundary.
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(1);
    faults::arm("bgpc.color", FaultAction::Panic);
    let r = color_bgpc(&g, &order, &Schedule::v_v(), &pool);
    faults::reset();
    assert_degraded_panic(&r, FailedPhase::Color, "single-thread");
    verify_bgpc(&g, &r.colors).unwrap();
}

#[test]
fn repeated_panics_across_runs_never_poison_the_pool() {
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    for round in 0..5 {
        faults::arm("bgpc.conflict", FaultAction::Panic);
        let r = color_bgpc(&g, &order, &Schedule::v_n(1), &pool);
        faults::reset();
        assert!(r.is_degraded(), "round {round} must degrade");
        verify_bgpc(&g, &r.colors).unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
    let clean = color_bgpc(&g, &order, &Schedule::v_n(1), &pool);
    assert!(!clean.is_degraded());
    verify_bgpc(&g, &clean.colors).unwrap();
}

#[test]
fn both_forbidden_set_representations_repair_after_faults() {
    // The word-packed BitStampSet and the per-color StampSet drive the
    // same generic kernels; a contained fault must repair into a valid
    // coloring regardless of which representation the run used (the
    // staged eager queue in particular must not lose or duplicate
    // entries across the containment boundary).
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    let opts = RunnerOpts::default();
    for schedule in [Schedule::v_v(), Schedule::n1_n2()] {
        faults::arm("bgpc.conflict", FaultAction::Panic);
        let r_bits = bgpc::color_bgpc_with_set::<bgpc::BitStampSet, _>(
            &g, &order, &schedule, &pool, opts.clone(),
        );
        faults::reset();
        assert_degraded_panic(&r_bits, FailedPhase::Conflict, "BitStampSet");
        verify_bgpc(&g, &r_bits.colors)
            .unwrap_or_else(|e| panic!("BitStampSet {}: {e}", schedule.name()));

        faults::arm("bgpc.conflict", FaultAction::Panic);
        let r_spec =
            bgpc::color_bgpc_with_set::<bgpc::StampSet, _>(&g, &order, &schedule, &pool, opts.clone());
        faults::reset();
        assert_degraded_panic(&r_spec, FailedPhase::Conflict, "StampSet");
        verify_bgpc(&g, &r_spec.colors)
            .unwrap_or_else(|e| panic!("StampSet {}: {e}", schedule.name()));
    }
    let d2 = d2gc_instance();
    let d2_order = Ordering::Natural.vertex_order_d2(&d2);
    faults::arm("d2gc.color", FaultAction::Panic);
    let r = bgpc::d2gc::color_d2gc_with_set::<bgpc::StampSet, _>(
        &d2,
        &d2_order,
        &Schedule::n1_n2(),
        &pool,
        opts,
    );
    faults::reset();
    assert_degraded_panic(&r, FailedPhase::Color, "D2GC StampSet");
    verify_d2gc(&d2, &r.colors).unwrap();
}

#[test]
fn stealing_worker_panic_mid_region_recovers() {
    let _g = serial();
    // Same shape as the dynamic-cursor worker test, but with per-worker
    // blocks: every thread owns a slice of the queue, so the targeted
    // thread is guaranteed to claim work and fire the point.
    let g = BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(4000, 2000, 40000, 7));
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    let schedule = Schedule::v_v_64d().with_sched(Sched::Stealing);
    faults::arm_with("bgpc.color", FaultAction::Panic, 1, Some(2));
    let r = color_bgpc(&g, &order, &schedule, &pool);
    let fired = faults::hits("bgpc.color") > 0;
    faults::reset();
    assert!(fired, "stealing partitions give thread 2 work up front");
    assert_degraded_panic(&r, FailedPhase::Color, "stealing worker 2");
    verify_bgpc(&g, &r.colors).unwrap();
    let clean = color_bgpc(&g, &order, &schedule, &pool);
    assert!(!clean.is_degraded(), "pool must recover after containment");
    verify_bgpc(&g, &clean.colors).unwrap();
}

#[test]
fn pinned_worker_panic_mid_steal_recovers() {
    let _g = serial();
    // `par.steal` fires after a worker drains its local block and before
    // it touches any victim — the hardest spot for the steal-range
    // disjointness invariant. Every stealing worker reaches it (the run
    // only ends once all blocks are empty), so the point fires
    // deterministically. Use a pinned pool so containment and repair are
    // also exercised under the near-first victim ordering; pinning is
    // best-effort, so the test is valid whether or not affinity took.
    let g = BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(4000, 2000, 40000, 7));
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new_pinned(4);
    let schedule = Schedule::v_v_64d().with_sched(Sched::Stealing);
    faults::arm_with("par.steal", FaultAction::Panic, 1, Some(2));
    let r = color_bgpc(&g, &order, &schedule, &pool);
    let fired = faults::hits("par.steal") > 0;
    faults::reset();
    assert!(fired, "every stealing worker reaches the mid-steal point");
    assert_degraded_panic(&r, FailedPhase::Color, "mid-steal worker 2");
    verify_bgpc(&g, &r.colors).expect("repaired coloring must be valid");
    let clean = color_bgpc(&g, &order, &schedule, &pool);
    assert!(!clean.is_degraded(), "pinned pool must recover after containment");
    verify_bgpc(&g, &clean.colors).unwrap();
}

#[test]
fn iteration_cap_zero_degrades_to_sequential_fallback() {
    // No fail points involved, but keep SERIAL: a concurrent armed point
    // from another test would otherwise fire inside this run too.
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    let opts = RunnerOpts { max_iterations: 0, ..RunnerOpts::default() };
    let r = color_bgpc_with_opts(&g, &order, &Schedule::n2_n2(), &pool, opts);
    assert!(matches!(
        r.degraded,
        Some(DegradeReason::IterationCap { cap: 0 })
    ));
    verify_bgpc(&g, &r.colors).expect("fallback coloring must be valid");
    assert!(r.num_colors >= g.max_net_size());
}

#[test]
fn iteration_cap_on_adversarial_clique_still_produces_valid_coloring() {
    let _g = serial();
    // One net over all vertices: every pair conflicts, so the speculative
    // loop needs many rounds to converge. Reversed order plus small chunks
    // maximizes contention; cap=1 forces the MAX_ITERATIONS fallback.
    let n = 64usize;
    let all: Vec<u32> = (0..n as u32).collect();
    let g = BipartiteGraph::from_matrix(&sparse::Csr::from_rows(n, &[all]));
    let order: Vec<u32> = (0..n as u32).rev().collect();
    let pool = Pool::new(4);
    let opts = RunnerOpts { max_iterations: 1, ..RunnerOpts::default() };
    let r = color_bgpc_with_opts(&g, &order, &Schedule::v_v(), &pool, opts);
    verify_bgpc(&g, &r.colors).expect("capped run must still be valid");
    // A clique of 64 needs exactly 64 colors.
    assert_eq!(r.num_colors, 64);
    if let Some(reason) = &r.degraded {
        assert!(matches!(reason, DegradeReason::IterationCap { cap: 1 }));
    }
}

#[test]
fn d2gc_iteration_cap_zero_degrades_to_sequential_fallback() {
    let _g = serial();
    let g = d2gc_instance();
    let order = Ordering::Natural.vertex_order_d2(&g);
    let pool = Pool::new(4);
    let opts = RunnerOpts { max_iterations: 0, ..RunnerOpts::default() };
    let r = color_d2gc_with_opts(&g, &order, &Schedule::n1_n2(), &pool, opts);
    assert!(matches!(
        r.degraded,
        Some(DegradeReason::IterationCap { cap: 0 })
    ));
    verify_d2gc(&g, &r.colors).expect("fallback coloring must be valid");
}

#[test]
fn expired_deadline_degrades_to_valid_best_so_far() {
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    // Deadline already in the past: zero speculative iterations run, the
    // repair path colors everything sequentially — "best-so-far" is still
    // a valid, complete coloring, tagged DeadlineExceeded.
    let opts = RunnerOpts {
        deadline: Some(std::time::Instant::now() - Duration::from_millis(1)),
        ..RunnerOpts::default()
    };
    let r = color_bgpc_with_opts(&g, &order, &Schedule::n1_n2(), &pool, opts);
    assert!(matches!(
        r.degraded,
        Some(DegradeReason::DeadlineExceeded { iter: 0 })
    ));
    verify_bgpc(&g, &r.colors).expect("deadline fallback must be valid");
    assert!(r.num_colors >= g.max_net_size());
}

#[test]
fn cancel_token_degrades_like_a_missed_deadline() {
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    let token = bgpc::CancelToken::new();
    token.cancel();
    let opts = RunnerOpts {
        cancel: Some(token),
        ..RunnerOpts::default()
    };
    let r = color_bgpc_with_opts(&g, &order, &Schedule::v_v(), &pool, opts);
    assert!(matches!(
        r.degraded,
        Some(DegradeReason::DeadlineExceeded { .. })
    ));
    verify_bgpc(&g, &r.colors).expect("cancelled run must still be valid");
}

#[test]
fn unexpired_deadline_leaves_run_clean() {
    let _g = serial();
    let g = bgpc_instance();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    let opts = RunnerOpts {
        deadline: Some(std::time::Instant::now() + Duration::from_secs(3600)),
        cancel: Some(bgpc::CancelToken::new()),
        ..RunnerOpts::default()
    };
    let r = color_bgpc_with_opts(&g, &order, &Schedule::n1_n2(), &pool, opts);
    assert!(!r.is_degraded(), "a far-future deadline must not trip");
    verify_bgpc(&g, &r.colors).unwrap();
}

#[test]
fn d2gc_expired_deadline_degrades_to_valid_best_so_far() {
    let _g = serial();
    let g = d2gc_instance();
    let order = Ordering::Natural.vertex_order_d2(&g);
    let pool = Pool::new(4);
    let opts = RunnerOpts {
        deadline: Some(std::time::Instant::now() - Duration::from_millis(1)),
        ..RunnerOpts::default()
    };
    let r = color_d2gc_with_opts(&g, &order, &Schedule::n1_n2(), &pool, opts);
    assert!(matches!(
        r.degraded,
        Some(DegradeReason::DeadlineExceeded { .. })
    ));
    verify_d2gc(&g, &r.colors).expect("deadline fallback must be valid");
}
