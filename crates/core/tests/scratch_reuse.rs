//! Regression: balancer-cursor carryover on a reused `ThreadCtx`.
//!
//! The B1/B2 cursors (`colmax`, `colnext`) are per-*run* state, but the
//! workspace that holds them is designed to be long-lived. Reusing a
//! scratch set across two colorings without
//! [`ThreadCtx::reset_for_run`](bgpc::ctx::ThreadCtx) used to leak the
//! first run's `colmax` into the second: B1's reverse-fit interval and
//! B2's rotation floor started from the previous graph's color count,
//! silently changing (and un-reproducing) the second result. These tests
//! pin the contract from both sides: the carryover is real (the cursors
//! do move), and a reset restores fresh-workspace-identical colorings.

use bgpc::ctx::ThreadCtx;
use bgpc::vertex::color_workqueue_vertex;
use bgpc::{Balance, BitStampSet, Color, Colors};
use graph::BipartiteGraph;
use par::{Pool, Sched, ThreadScratch};
use sparse::Csr;

/// A star: one net over `n` vertices, forcing `n` distinct colors and
/// driving `colmax` up to `n - 1`.
fn star(n: usize) -> BipartiteGraph {
    BipartiteGraph::from_matrix(&Csr::from_rows(n, &[(0..n as u32).collect()]))
}

/// A small two-net instance, the "second run" workload.
fn small() -> BipartiteGraph {
    BipartiteGraph::from_matrix(&Csr::from_rows(4, &[vec![0, 1], vec![2, 3]]))
}

/// Colors `g` single-threaded with the given balancer through the public
/// vertex kernel, using the provided scratch set.
fn color_with(
    g: &BipartiteGraph,
    balance: Balance,
    pool: &Pool,
    scratch: &ThreadScratch<ThreadCtx<BitStampSet, u32>>,
) -> Vec<Color> {
    let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    let colors = Colors::new(g.n_vertices());
    color_workqueue_vertex(g, &order, &colors, pool, 64, Sched::Dynamic, balance, scratch);
    colors.snapshot()
}

#[test]
fn balancer_cursors_survive_a_run_without_reset() {
    // Precondition for the reset to matter at all: a big first run must
    // actually move the cursors. If this stops holding, the reuse tests
    // below test nothing.
    let pool = Pool::new(1);
    let mut scratch: ThreadScratch<ThreadCtx<BitStampSet, u32>> =
        ThreadScratch::new(1, |_| ThreadCtx::new(64 + 64));
    let _ = color_with(&star(48), Balance::B2, &pool, &scratch);
    let moved = {
        let ctx = scratch.iter_mut().next().expect("one context");
        ctx.balancer.colmax > 0 || ctx.balancer.colnext > 0
    };
    assert!(moved, "a 48-color B2 run must advance the balancer cursors");
}

#[test]
fn reset_restores_fresh_workspace_results_back_to_back() {
    let pool = Pool::new(1);
    for balance in [Balance::B1, Balance::B2] {
        // Baseline: the small instance colored with a fresh workspace.
        let fresh: ThreadScratch<ThreadCtx<BitStampSet, u32>> =
            ThreadScratch::new(1, |_| ThreadCtx::new(64 + 64));
        let baseline = color_with(&small(), balance, &pool, &fresh);

        // Reused workspace: big run first, then reset, then the small
        // instance — must be identical to the fresh-workspace result.
        let mut reused: ThreadScratch<ThreadCtx<BitStampSet, u32>> =
            ThreadScratch::new(1, |_| ThreadCtx::new(64 + 64));
        let _ = color_with(&star(48), balance, &pool, &reused);
        for ctx in reused.iter_mut() {
            ctx.reset_for_run();
        }
        let second = color_with(&small(), balance, &pool, &reused);
        assert_eq!(
            second, baseline,
            "{}: reused+reset workspace must reproduce the fresh result",
            balance.label()
        );

        // And back-to-back repetition with a reset in between is stable.
        for ctx in reused.iter_mut() {
            ctx.reset_for_run();
        }
        let third = color_with(&small(), balance, &pool, &reused);
        assert_eq!(third, baseline, "{}: repeat run drifted", balance.label());
    }
}

#[test]
fn runner_results_are_reuse_independent() {
    // End-to-end pin: two identical back-to-back runner calls (which
    // allocate and defensively reset their own scratch) must be
    // bit-identical for every balancer, single-threaded.
    use bgpc::Schedule;
    use graph::Ordering;
    let g = star(48);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(1);
    for balance in [Balance::Unbalanced, Balance::B1, Balance::B2] {
        let schedule = Schedule::v_v().with_balance(balance);
        let a = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        let b = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        assert_eq!(
            a.colors,
            b.colors,
            "{}: back-to-back runner calls diverged",
            balance.label()
        );
    }
}
