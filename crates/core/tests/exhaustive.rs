//! Exhaustive enumeration tests: every bipartite pattern and every simple
//! graph up to a small size, across every schedule. Complements the
//! randomized property tests with complete coverage of the tiny cases
//! where edge conditions (empty nets, isolated vertices, full cliques)
//! live.

use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::Schedule;
use graph::{BipartiteGraph, Graph, Ordering};
use par::Pool;
use sparse::{Coo, Csr};

/// All bipartite patterns with `nrows` nets over `ncols` vertices.
fn all_bipartite(nrows: usize, ncols: usize) -> impl Iterator<Item = Csr> {
    let cells = nrows * ncols;
    assert!(cells <= 12, "enumeration explodes past 2^12");
    (0u32..(1 << cells)).map(move |mask| {
        let mut coo = Coo::new(nrows, ncols);
        for bit in 0..cells {
            if mask & (1 << bit) != 0 {
                coo.push(bit / ncols, bit % ncols);
            }
        }
        coo.into_csr()
    })
}

/// All simple undirected graphs on `n` vertices.
fn all_graphs(n: usize) -> impl Iterator<Item = Csr> {
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    assert!(pairs.len() <= 12);
    (0u32..(1 << pairs.len())).map(move |mask| {
        let mut coo = Coo::new(n, n);
        for (bit, &(u, v)) in pairs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                coo.push_symmetric(u, v);
            }
        }
        coo.into_csr()
    })
}

#[test]
fn every_bipartite_3x4_every_schedule_single_thread() {
    let pool = Pool::new(1);
    for matrix in all_bipartite(3, 4) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        for schedule in Schedule::all() {
            let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            verify_bgpc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{} on {matrix:?}: {e}", schedule.name()));
            assert!(r.num_colors >= g.max_net_size());
        }
    }
}

#[test]
fn every_bipartite_2x5_parallel_headline_schedules() {
    let pool = Pool::new(3);
    for matrix in all_bipartite(2, 5) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        for schedule in [Schedule::v_v(), Schedule::v_n(2), Schedule::n1_n2()] {
            let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            verify_bgpc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{} on {matrix:?}: {e}", schedule.name()));
        }
    }
}

#[test]
fn every_graph_on_4_vertices_d2gc() {
    let pool = Pool::new(2);
    for matrix in all_graphs(4) {
        let g = Graph::from_symmetric_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        for schedule in Schedule::d2gc_set() {
            let r = bgpc::d2gc::color_d2gc(&g, &order, &schedule, &pool);
            verify_d2gc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{} on {matrix:?}: {e}", schedule.name()));
        }
    }
}

#[test]
fn every_graph_on_5_vertices_seq_matches_1thread() {
    let pool = Pool::new(1);
    for matrix in all_graphs(5) {
        let g = Graph::from_symmetric_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let (seq, _) = bgpc::seq::color_d2gc_seq(&g, &order);
        let r = bgpc::d2gc::color_d2gc(&g, &order, &Schedule::v_v(), &pool);
        assert_eq!(r.colors, seq, "graph {matrix:?}");
    }
}

#[test]
fn every_graph_on_4_vertices_dk_specializations() {
    for matrix in all_graphs(4) {
        let g = Graph::from_symmetric_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let (c1, _) = bgpc::dkgc::color_dkgc_seq(&g, &order, 1);
        let (d1, _) = bgpc::d1gc::color_d1gc_seq(&g, &order);
        assert_eq!(c1, d1, "k=1 on {matrix:?}");
        let (c2, _) = bgpc::dkgc::color_dkgc_seq(&g, &order, 2);
        let (d2, _) = bgpc::seq::color_d2gc_seq(&g, &order);
        assert_eq!(c2, d2, "k=2 on {matrix:?}");
        bgpc::dkgc::verify_dkgc(&g, &c2, 2).unwrap();
        // k ≥ diameter: every connected pair distinct — on ≤4 vertices,
        // k=3 colors each connected component with distinct colors.
        let (c3, _) = bgpc::dkgc::color_dkgc_seq(&g, &order, 3);
        bgpc::dkgc::verify_dkgc(&g, &c3, 3).unwrap();
    }
}

#[test]
fn recolor_pass_never_invalidates_exhaustively() {
    for matrix in all_bipartite(3, 4) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let (mut colors, k0) = bgpc::seq::color_bgpc_seq(&g, &order);
        let k1 = bgpc::recolor::reduce_colors_bgpc_seq(&g, &mut colors);
        verify_bgpc(&g, &colors).unwrap_or_else(|e| panic!("{matrix:?}: {e}"));
        assert!(k1 <= k0);
    }
}
