//! Properties of the tracing counters against the run's own queue
//! bookkeeping and the sequential baseline, plus a fault-injection case
//! proving a contained worker panic still yields a well-formed trace.
//!
//! The `par::faults` registry is process-global and the coloring kernels
//! fire `bgpc.*` points on every run, so all tests here serialize on
//! `SERIAL` (an armed point from a concurrent test must not fire inside a
//! property run).

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use bgpc::Schedule;
use graph::{BipartiteGraph, Ordering};
use minicheck::{check, prop_assert};
use par::faults::{self, FaultAction};
use par::{Pool, Sched};
use trace::Counter;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A pool with a fresh recorder installed (counters are monotonic, so
/// each run gets its own zeroed sheets).
fn traced_pool(threads: usize) -> Pool {
    let mut pool = Pool::new(threads);
    pool.set_tracer(Arc::new(trace::Recorder::new(pool.threads())));
    pool
}

#[test]
fn per_thread_counts_agree_with_queue_sizes_under_both_schedulers() {
    let _g = serial();
    // V-V-64D keeps every phase vertex-based, where the exact identities
    // hold: each queued vertex is colored once per coloring phase, and
    // each conflict loser is pushed exactly once.
    check("trace_counts_match_queues", 32, |gen| {
        let nets = gen.usize_in(1..30);
        let verts = gen.usize_in(2..50);
        let nnz = gen.usize_in(1..(nets * verts).min(300));
        let seed = gen.u64_in(0..1 << 32);
        let m = sparse::gen::bipartite_uniform(nets, verts, nnz, seed);
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);

        for sched in [Sched::Dynamic, Sched::Stealing] {
            let pool = traced_pool(3);
            let schedule = Schedule::v_v_64d().with_sched(sched);
            let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            prop_assert!(!r.is_degraded(), "no faults armed");

            let mut colored_total = 0u64;
            let mut conflicts_total = 0u64;
            for it in &r.iterations {
                prop_assert!(
                    !it.per_thread.is_empty(),
                    "recorder installed, so slices must be populated"
                );
                let colored: u64 = it
                    .per_thread
                    .iter()
                    .map(|t| t.color.get(Counter::VerticesColored))
                    .sum();
                let conflicts: u64 = it
                    .per_thread
                    .iter()
                    .map(|t| t.conflict.get(Counter::ConflictsDetected))
                    .sum();
                prop_assert!(
                    colored == it.queue_in as u64,
                    "{sched} iter {}: {} colored != queue_in {}",
                    it.iter,
                    colored,
                    it.queue_in
                );
                prop_assert!(
                    conflicts == it.queue_out as u64,
                    "{sched} iter {}: {} conflicts != queue_out {}",
                    it.iter,
                    conflicts,
                    it.queue_out
                );
                colored_total += colored;
                conflicts_total += conflicts;
            }

            // The merged totals must tell the same story.
            let totals = r.per_thread_totals();
            let merged_colored: u64 =
                totals.iter().map(|s| s.get(Counter::VerticesColored)).sum();
            let merged_conflicts: u64 = totals
                .iter()
                .map(|s| s.get(Counter::ConflictsDetected))
                .sum();
            prop_assert!(merged_colored == colored_total, "{sched} merged colored");
            prop_assert!(
                merged_conflicts == conflicts_total,
                "{sched} merged conflicts"
            );
        }
        Ok(())
    });
}

#[test]
fn single_thread_totals_equal_sequential_baseline() {
    let _g = serial();
    // One thread cannot race itself: the run must equal the sequential
    // first-fit baseline exactly, color zero conflicts, and count exactly
    // one colored vertex per queue entry — under both chunk schedulers.
    check("trace_totals_vs_sequential", 24, |gen| {
        let nets = gen.usize_in(1..25);
        let verts = gen.usize_in(2..40);
        let nnz = gen.usize_in(1..(nets * verts).min(220));
        let seed = gen.u64_in(0..1 << 32);
        let m = sparse::gen::bipartite_uniform(nets, verts, nnz, seed);
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let (seq_colors, seq_k) = bgpc::seq::color_bgpc_seq(&g, &order);

        for sched in [Sched::Dynamic, Sched::Stealing] {
            let pool = traced_pool(1);
            let schedule = Schedule::v_v().with_sched(sched);
            let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            prop_assert!(r.colors == seq_colors, "{sched}: colors differ from seq");
            prop_assert!(r.num_colors == seq_k, "{sched}: color count differs");

            let totals = r.per_thread_totals();
            let colored: u64 = totals.iter().map(|s| s.get(Counter::VerticesColored)).sum();
            let conflicts: u64 = totals
                .iter()
                .map(|s| s.get(Counter::ConflictsDetected))
                .sum();
            prop_assert!(
                colored == g.n_vertices() as u64,
                "{sched}: one thread colors each vertex exactly once ({} != {})",
                colored,
                g.n_vertices()
            );
            prop_assert!(conflicts == 0, "{sched}: one thread cannot conflict");
        }
        Ok(())
    });
}

#[test]
fn contained_worker_panic_still_yields_well_formed_trace_file() {
    let _g = serial();
    let g = BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(60, 90, 1200, 11));
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = traced_pool(4);

    faults::arm("bgpc.conflict", FaultAction::Panic);
    let r = bgpc::color_bgpc(&g, &order, &Schedule::v_v(), &pool);
    faults::reset();
    assert!(r.is_degraded(), "armed panic must degrade the run");
    bgpc::verify::verify_bgpc(&g, &r.colors).expect("repaired coloring valid");

    // Export the trace exactly as the CLI would and round-trip it through
    // the schema-validating reader: the panicking worker's busy span was
    // flushed by its drop guard during unwind, so every thread appears.
    let rec = pool.tracer().expect("recorder installed");
    let json = trace::chrome_trace_json(rec, "fault-injection-test");
    let dir = std::env::temp_dir().join("bgpc-trace-fault-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("faulted.trace.json");
    std::fs::write(&path, &json).unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let parsed = trace::reader::ChromeTrace::parse(&text)
        .unwrap_or_else(|e| panic!("faulted trace must stay schema-valid: {e}"));
    let busy = parsed.busy_per_thread();
    assert_eq!(
        busy.len(),
        4,
        "all four workers (including the panicked one) must have busy spans"
    );
    let total_busy: f64 = busy.iter().map(|&(_, ms)| ms).sum();
    assert!(total_busy > 0.0, "busy time must be recorded");
    // The degraded run repaired sequentially, which the trace records as a
    // `repair` span on the master timeline.
    assert!(
        parsed.spans().any(|e| e.name == "repair"),
        "degraded run must carry a repair span"
    );
    std::fs::remove_dir_all(&dir).ok();
}
