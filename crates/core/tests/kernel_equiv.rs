//! Property tests: the `--kernel` axis never changes the coloring.
//!
//! At one thread there is no speculation — every run is deterministic —
//! so forcing [`bgpc::KernelImpl::Scalar`] and [`bgpc::KernelImpl::Simd`]
//! through the same schedule must produce bit-identical colorings on both
//! problems. On multi-thread teams the colorings may legitimately differ
//! run to run, but every kernel must still produce a *valid* one. On
//! non-x86-64 hosts `Simd` resolves to the scalar tier and these tests
//! pin that the fallback is exact.

use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{KernelImpl, Schedule};
use graph::{BipartiteGraph, Graph, Ordering};
use minicheck::{check, prop_assert};
use par::{Pool, Sched};

fn schedules_bgpc() -> Vec<Schedule> {
    vec![Schedule::v_v(), Schedule::v_v_64d(), Schedule::n1_n2(), Schedule::n2_n2()]
}

fn schedules_d2gc() -> Vec<Schedule> {
    vec![Schedule::v_v_64d(), Schedule::n1_n2()]
}

#[test]
fn bgpc_colorings_are_kernel_invariant_at_one_thread() {
    check("bgpc_kernel_equivalence", 48, |g| {
        let nets = g.usize_in(1..40);
        let verts = g.usize_in(1..40);
        let nnz = g.usize_in(0..nets * verts / 2 + 1);
        let seed = g.u64_in(0..u64::MAX);
        let m = sparse::gen::bipartite_uniform(nets, verts, nnz, seed);
        let graph = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&graph);
        let pool = Pool::new(1);
        for base in schedules_bgpc() {
            for sched in Sched::all() {
                let scalar = bgpc::color_bgpc(
                    &graph,
                    &order,
                    &base.clone().with_sched(sched).with_kernel(KernelImpl::Scalar),
                    &pool,
                );
                let simd = bgpc::color_bgpc(
                    &graph,
                    &order,
                    &base.clone().with_sched(sched).with_kernel(KernelImpl::Simd),
                    &pool,
                );
                prop_assert!(
                    scalar.colors == simd.colors,
                    "{}/{sched} diverged on {nets}x{verts} nnz={nnz} seed={seed}",
                    base.name()
                );
                verify_bgpc(&graph, &simd.colors).map_err(|e| format!("invalid: {e}"))?;
            }
        }
        Ok(())
    });
}

#[test]
fn d2gc_colorings_are_kernel_invariant_at_one_thread() {
    check("d2gc_kernel_equivalence", 48, |g| {
        let n = g.usize_in(1..40);
        let max_edges = (3 * n).min(n * (n - 1) / 2);
        let edges = g.usize_in(0..max_edges + 1);
        let seed = g.u64_in(0..u64::MAX);
        let m = sparse::gen::erdos_renyi(n, edges, seed);
        let graph = Graph::from_symmetric_matrix(&m);
        let order = Ordering::Natural.vertex_order_d2(&graph);
        let pool = Pool::new(1);
        for base in schedules_d2gc() {
            for sched in Sched::all() {
                let scalar = bgpc::d2gc::color_d2gc(
                    &graph,
                    &order,
                    &base.clone().with_sched(sched).with_kernel(KernelImpl::Scalar),
                    &pool,
                );
                let simd = bgpc::d2gc::color_d2gc(
                    &graph,
                    &order,
                    &base.clone().with_sched(sched).with_kernel(KernelImpl::Simd),
                    &pool,
                );
                prop_assert!(
                    scalar.colors == simd.colors,
                    "{}/{sched} diverged on n={n} edges={edges} seed={seed}",
                    base.name()
                );
                verify_d2gc(&graph, &simd.colors).map_err(|e| format!("invalid: {e}"))?;
            }
        }
        Ok(())
    });
}

#[test]
fn every_kernel_request_is_valid_on_a_multithread_team() {
    // 4-way team on a dense-ish instance: all three axis values must
    // produce verified colorings under both chunk schedulers.
    let m = sparse::gen::bipartite_uniform(400, 300, 6000, 9);
    let graph = BipartiteGraph::from_matrix(&m);
    let order = Ordering::Natural.vertex_order_bgpc(&graph);
    let pool = Pool::new(4);
    for kernel in KernelImpl::all() {
        for sched in Sched::all() {
            let schedule = Schedule::n1_n2().with_sched(sched).with_kernel(kernel);
            let r = bgpc::color_bgpc(&graph, &order, &schedule, &pool);
            verify_bgpc(&graph, &r.colors)
                .unwrap_or_else(|e| panic!("{kernel}/{sched}: invalid coloring: {e}"));
            assert!(r.degraded.is_none(), "{kernel}/{sched}: unexpected degradation");
        }
    }
}
