//! Integration contracts for the auto-tuning engine: selection is a pure
//! function of (table, instance) — invariant across repeated calls, pool
//! sizes, and process-internal state — and the selected configs run to a
//! valid coloring even on degenerate instances. Explicit overrides beat
//! the table on every axis.

use bgpc::engine::color_bgpc_with_config;
use bgpc::runner::RunnerOpts;
use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{Engine, EngineChoice, OnlineTuner, Overrides, Schedule};
use graph::{BipartiteGraph, Graph, Ordering};
use par::Pool;
use sparse::{Csr, IndexWidth};

fn assert_same_choice(a: &EngineChoice, b: &EngineChoice, what: &str) {
    assert_eq!(a.config.describe(), b.config.describe(), "{what}");
    assert_eq!(a.matched, b.matched, "{what}");
}

#[test]
fn selection_is_deterministic_across_runs() {
    let engine = Engine::with_default_table();
    let m = sparse::gen::bipartite_uniform(120, 160, 2400, 7);
    let g = BipartiteGraph::from_matrix(&m);
    let first = engine.select_bgpc(&g);
    for run in 1..10 {
        assert_same_choice(&first, &engine.select_bgpc(&g), &format!("run {run}"));
    }
    // A second engine over the same table text agrees too: no hidden
    // per-construction state feeds into selection.
    let other = Engine::with_default_table();
    assert_same_choice(&first, &other.select_bgpc(&g), "fresh engine");
}

#[test]
fn selection_is_invariant_to_thread_count() {
    // Feature extraction and table lookup never consult a pool, but the
    // end-to-end callers all hold one — pin the contract that building
    // and using pools of every size the oracle draws (1–4) leaves the
    // selection untouched, and that the chosen config runs validly at
    // each of those sizes.
    let engine = Engine::with_default_table();
    let m = sparse::gen::bipartite_uniform(100, 140, 2000, 23);
    let g = BipartiteGraph::from_matrix(&m);
    let reference = engine.select_bgpc(&g);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    for threads in 1..=4usize {
        let pool = Pool::new(threads);
        let choice = engine.select_bgpc(&g);
        assert_same_choice(&reference, &choice, &format!("threads {threads}"));
        let res = color_bgpc_with_config(
            &g,
            &order,
            &choice.config,
            &pool,
            RunnerOpts {
                online: Some(OnlineTuner::default()),
                ..RunnerOpts::default()
            },
        );
        verify_bgpc(&g, &res.colors)
            .unwrap_or_else(|e| panic!("threads {threads}: invalid coloring: {e}"));
        assert!(res.degraded.is_none(), "threads {threads}: degraded run");
    }
}

#[test]
fn d2gc_selection_is_deterministic() {
    let engine = Engine::with_default_table();
    let m = sparse::gen::erdos_renyi(60, 120, 5);
    let g = Graph::from_symmetric_matrix(&m);
    let first = engine.select_d2gc(&g);
    for run in 1..10 {
        assert_same_choice(&first, &engine.select_d2gc(&g), &format!("run {run}"));
    }
}

/// Degenerate instances must select (via the degenerate default) and the
/// selected config must color them without panicking or degrading.
#[test]
fn degenerate_instances_select_and_run() {
    let engine = Engine::with_default_table();
    let cases: Vec<(&str, Csr)> = vec![
        // No colored vertices at all.
        ("empty V_A", Csr::empty(4, 0)),
        // No nets: every vertex is isolated.
        ("no nets", Csr::empty(0, 5)),
        // Vertices exist but no pin connects them to any net.
        ("all-empty nets", Csr::empty(3, 7)),
        // The smallest non-trivial instance.
        ("single vertex", Csr::from_rows(1, &[vec![0]])),
        // A star: one net pinning every vertex — max_net == n, every
        // pair of vertices conflicts, n colors are forced.
        ("star", Csr::from_rows(8, &[(0..8u32).collect()])),
        // An inverted star: one vertex on every net.
        ("inverted star", Csr::from_rows(1, &(0..6).map(|_| vec![0u32]).collect::<Vec<_>>())),
    ];
    for (name, m) in cases {
        let g = BipartiteGraph::from_matrix(&m);
        let a = engine.select_bgpc(&g);
        let b = engine.select_bgpc(&g);
        assert_same_choice(&a, &b, name);
        if m.nnz() == 0 {
            assert_eq!(a.matched, "default(degenerate)", "{name}");
        }
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(2);
        let res = color_bgpc_with_config(&g, &order, &a.config, &pool, RunnerOpts::default());
        verify_bgpc(&g, &res.colors).unwrap_or_else(|e| panic!("{name}: invalid: {e}"));
        assert!(res.degraded.is_none(), "{name}: degraded");
        if name == "star" {
            assert_eq!(res.num_colors, 8, "a K8 conflict clique forces 8 colors");
        }
    }
}

#[test]
fn degenerate_d2gc_instances_select_and_run() {
    let engine = Engine::with_default_table();
    let cases: Vec<(&str, Csr)> = vec![
        ("empty graph", Csr::empty(0, 0)),
        ("isolated vertices", Csr::empty(6, 6)),
        ("single vertex", Csr::from_rows(1, &[vec![]])),
    ];
    for (name, m) in cases {
        let g = Graph::from_symmetric_matrix(&m);
        let a = engine.select_d2gc(&g);
        assert_same_choice(&a, &engine.select_d2gc(&g), name);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(2);
        let res = bgpc::engine::color_d2gc_with_config(
            &g,
            &order,
            &a.config,
            &pool,
            RunnerOpts::default(),
        );
        verify_d2gc(&g, &res.colors).unwrap_or_else(|e| panic!("{name}: invalid: {e}"));
        assert!(res.degraded.is_none(), "{name}: degraded");
    }
}

/// The override contract at the integration level: every explicitly set
/// axis survives `apply` regardless of what the table said, and the
/// overridden config still runs to a valid coloring.
#[test]
fn explicit_overrides_beat_the_engine_end_to_end() {
    let engine = Engine::with_default_table();
    let m = sparse::gen::bipartite_uniform(90, 110, 1600, 31);
    let g = BipartiteGraph::from_matrix(&m);
    let mut cfg = engine.select_bgpc(&g).config;
    let ov = Overrides {
        schedule: Some(Schedule::v_v()),
        index_width: Some(IndexWidth::U64),
        ..Overrides::default()
    };
    ov.apply(&mut cfg);
    assert_eq!(cfg.schedule.name(), Schedule::v_v().name());
    assert_eq!(cfg.index_width, IndexWidth::U64);

    let m64 = m.to_index::<u64>();
    let g64 = BipartiteGraph::from_matrix(&m64);
    let order = Ordering::Natural.vertex_order_bgpc(&g64);
    let res = color_bgpc_with_config(&g64, &order, &cfg, &Pool::new(3), RunnerOpts::default());
    verify_bgpc(&g64, &res.colors).expect("overridden config colors validly");

    // An empty override set is the identity.
    let before = cfg.describe();
    Overrides::default().apply(&mut cfg);
    assert_eq!(cfg.describe(), before);
}

/// Custom-table rule check at integration level: a point far from any
/// exemplar still lands on the problem's default row rather than a
/// different problem's row.
#[test]
fn selection_never_crosses_problem_kinds() {
    let text = "\
default bgpc schedule=N1-N2 sched=dynamic width=auto relabel=none kernel=auto forbidden=auto
default d2gc schedule=V-V-64D sched=dynamic width=auto relabel=none kernel=auto forbidden=auto
point bgpc tag=ex n=100 nets=100 nnz=1000 maxdeg=10 maxnet=10 avgdeg=10.0 cv=0.1 density=0.1 \
-> schedule=V-V sched=stealing width=u32 relabel=degree kernel=scalar forbidden=stamp
";
    let engine = Engine::from_table_text(text).expect("table parses");
    let m = sparse::gen::erdos_renyi(50, 100, 9);
    let g = Graph::from_symmetric_matrix(&m);
    let choice = engine.select_d2gc(&g);
    // The lone exemplar is a BGPC point; a D2GC instance must not match
    // it, however near its features are.
    assert_ne!(choice.matched, "ex");
    assert_eq!(choice.config.schedule.name(), Schedule::v_v_64d().name());
}
