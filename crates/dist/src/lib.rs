//! `dist` — distributed-memory speculative coloring: an in-process BSP
//! model plus a real multi-process shard coordinator.
//!
//! The paper's related work (§VII) credits the speculative
//! color/detect/repair loop to distributed-memory BGPC/D2GC frameworks
//! (Boman, Bozdağ, Çatalyürek, Gebremedhin, Manne et al.): each rank owns
//! a partition of the vertices, colors them in supersteps, exchanges
//! boundary colors, and re-queues conflict losers. This crate implements
//! that framework twice, sharing the [`Partition`] types and the
//! per-superstep accounting:
//!
//! * [`DistRunner`] ([`bsp`]) is a **deterministic BSP simulation** —
//!   ranks are plain data, "messages" are explicit buffers flushed at
//!   superstep boundaries — so rounds/conflicts/message volume can be
//!   studied on one machine and contrasted with the paper's
//!   shared-memory algorithms.
//! * [`Coordinator`] ([`coord`]) is the **real scale-out path**: each
//!   shard is a `serve` worker process, supersteps and boundary
//!   exchanges travel over TCP in the daemon's length-prefixed protocol
//!   (`Shard`/`Superstep`/`Flush` frames), interior vertices color while
//!   boundary messages are in flight, and a worker dying mid-superstep
//!   degrades to a valid single-node run instead of failing.
//!
//! What both paths preserve from the real systems:
//!
//! * the **owner-computes** rule — only the owner colors a vertex;
//! * **stale boundary knowledge** — within a superstep, remote colors are
//!   those received at the previous flush, which is the actual source of
//!   distributed conflicts;
//! * **id-ordered conflict resolution** — of a conflicting cross-rank
//!   pair, the larger id is re-queued (matching the shared-memory rule);
//! * per-superstep accounting of conflicts and message volume.
//!
//! What the simulation abstracts away — network latency and
//! communication/computation overlap — the sharded path exercises for
//! real (see DESIGN.md §11).

pub mod bsp;
pub mod coord;
pub mod partition;

pub use bsp::{DistResult, DistRunner, SuperstepStats};
pub use coord::{Coordinator, ShardOutcome};
pub use partition::Partition;
