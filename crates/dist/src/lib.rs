//! `dist` — a simulated distributed-memory speculative coloring framework.
//!
//! The paper's related work (§VII) credits the speculative
//! color/detect/repair loop to distributed-memory BGPC/D2GC frameworks
//! (Boman, Bozdağ, Çatalyürek, Gebremedhin, Manne et al.): each rank owns
//! a partition of the vertices, colors them in supersteps, exchanges
//! boundary colors, and re-queues conflict losers. This crate implements
//! that framework as a **deterministic BSP simulation** — ranks are plain
//! data, "messages" are explicit buffers flushed at superstep boundaries —
//! so its behaviour (rounds, conflicts, message volume) can be studied on
//! one machine and contrasted with the paper's shared-memory algorithms.
//!
//! What the simulation preserves from the real systems:
//!
//! * the **owner-computes** rule — only the owner colors a vertex;
//! * **stale boundary knowledge** — within a superstep, remote colors are
//!   those received at the previous flush, which is the actual source of
//!   distributed conflicts;
//! * **id-ordered conflict resolution** — of a conflicting cross-rank
//!   pair, the larger id is re-queued (matching the shared-memory rule);
//! * per-superstep accounting of conflicts and message volume.
//!
//! What it abstracts away: network latency/topology and overlap of
//! communication with computation (the paper does not evaluate those
//! either — see DESIGN.md §4).

pub mod bsp;
pub mod partition;

pub use bsp::{DistResult, DistRunner, SuperstepStats};
pub use partition::Partition;
