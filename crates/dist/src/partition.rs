//! Vertex-to-rank partitioning.

use self::rand_like::shuffle_u32;

/// An assignment of vertices to `n_ranks` owners.
#[derive(Clone, Debug)]
pub struct Partition {
    owner: Vec<u32>,
    n_ranks: usize,
}

impl Partition {
    /// Contiguous block partition: rank `r` owns the `r`-th slice of the
    /// vertex range (the usual default for matrices with locality).
    pub fn block(n_vertices: usize, n_ranks: usize) -> Self {
        let n_ranks = n_ranks.max(1);
        let mut owner = vec![0u32; n_vertices];
        for (v, o) in owner.iter_mut().enumerate() {
            *o = (v * n_ranks / n_vertices.max(1)) as u32;
        }
        Self { owner, n_ranks }
    }

    /// Round-robin (cyclic) partition: vertex `v` belongs to `v mod p` —
    /// maximizes boundary, the worst case for communication.
    pub fn cyclic(n_vertices: usize, n_ranks: usize) -> Self {
        let n_ranks = n_ranks.max(1);
        let owner = (0..n_vertices).map(|v| (v % n_ranks) as u32).collect();
        Self { owner, n_ranks }
    }

    /// Seeded random balanced partition.
    pub fn random(n_vertices: usize, n_ranks: usize, seed: u64) -> Self {
        let n_ranks = n_ranks.max(1);
        let mut ids: Vec<u32> = (0..n_vertices as u32).collect();
        shuffle_u32(&mut ids, seed);
        let mut owner = vec![0u32; n_vertices];
        for (pos, &v) in ids.iter().enumerate() {
            owner[v as usize] = (pos % n_ranks) as u32;
        }
        Self { owner, n_ranks }
    }

    /// Builds from an explicit owner array.
    ///
    /// # Panics
    /// Panics if any owner id is out of range.
    pub fn from_owners(owner: Vec<u32>, n_ranks: usize) -> Self {
        assert!(n_ranks >= 1);
        assert!(
            owner.iter().all(|&o| (o as usize) < n_ranks),
            "owner id out of range"
        );
        Self { owner, n_ranks }
    }

    /// Owner rank of vertex `v`.
    #[inline]
    pub fn owner(&self, v: usize) -> usize {
        self.owner[v] as usize
    }

    /// The full vertex-to-rank owner array (indexed by vertex id).
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// The vertices owned by each rank.
    pub fn rank_vertices(&self) -> Vec<Vec<u32>> {
        let mut per_rank = vec![Vec::new(); self.n_ranks];
        for (v, &o) in self.owner.iter().enumerate() {
            per_rank[o as usize].push(v as u32);
        }
        per_rank
    }

    /// Load imbalance: max rank size / mean rank size (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        if self.owner.is_empty() {
            return 1.0;
        }
        let sizes: Vec<usize> = self.rank_vertices().iter().map(|r| r.len()).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = self.owner.len() as f64 / self.n_ranks as f64;
        max / mean
    }
}

/// Tiny internal xorshift-based shuffle so this crate does not need the
/// full `rand` stack (determinism is all that matters here).
mod rand_like {
    pub fn shuffle_u32(data: &mut [u32], seed: u64) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..data.len()).rev() {
            // Unbiased bounded draw via rejection sampling: `next() %
            // (i + 1)` over-weights small residues whenever 2^64 is not
            // a multiple of the bound (modulo-biased Fisher-Yates), so
            // draws landing in the truncated top interval are redrawn.
            let bound = i as u64 + 1;
            let limit = u64::MAX - u64::MAX % bound;
            let j = loop {
                let x = next();
                if x < limit {
                    break (x % bound) as usize;
                }
            };
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_is_contiguous_and_balanced() {
        let p = Partition::block(10, 3);
        assert_eq!(p.n_ranks(), 3);
        let ranks = p.rank_vertices();
        assert_eq!(ranks.iter().map(|r| r.len()).sum::<usize>(), 10);
        for r in &ranks {
            for w in r.windows(2) {
                assert_eq!(w[1], w[0] + 1, "block partitions are contiguous");
            }
        }
        assert!(p.imbalance() <= 1.5);
    }

    #[test]
    fn cyclic_partition_alternates() {
        let p = Partition::cyclic(6, 2);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(1), 1);
        assert_eq!(p.owner(2), 0);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_partition_is_balanced_and_seeded() {
        let a = Partition::random(100, 4, 7);
        let b = Partition::random(100, 4, 7);
        assert_eq!(a.rank_vertices(), b.rank_vertices());
        assert!(a.imbalance() <= 1.01);
        let c = Partition::random(100, 4, 8);
        assert_ne!(a.rank_vertices(), c.rank_vertices());
        // Pin the exact permutation of the rejection-sampled shuffle so a
        // regression back to the modulo-biased draw (or any other change
        // to the generator) shows up as a visible diff here.
        let d = Partition::random(12, 4, 7);
        assert_eq!(d.owners(), &[3, 0, 3, 0, 1, 2, 2, 1, 0, 2, 3, 1]);
    }

    #[test]
    fn from_owners_validates() {
        let p = Partition::from_owners(vec![0, 1, 0], 2);
        assert_eq!(p.owner(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_owner_rejected() {
        Partition::from_owners(vec![0, 5], 2);
    }

    #[test]
    fn single_rank_owns_everything() {
        let p = Partition::block(5, 1);
        assert!(p.rank_vertices()[0].len() == 5);
    }
}
