//! `bench_dist` — sharded-coloring benchmark over in-process workers.
//!
//! Boots one `serve` daemon per shard on loopback, drives the
//! [`dist::Coordinator`] at 1/2/4/8 shards over a fixed synthetic
//! instance, verifies every assembled coloring, and writes
//! `BENCH_dist.json` (wall time, rounds, message volume per shard
//! count). Workers are real daemon processes from the protocol's point
//! of view — every superstep crosses TCP — but run in-process here so
//! the benchmark is hermetic and deterministic apart from wall time.
//!
//! ```text
//! bench_dist [--out FILE] [--nets N] [--verts N] [--nnz N] [--seed N]
//!            [--partition block|cyclic|random]
//! ```

use std::time::{Duration, Instant};

use dist::{Coordinator, Partition};
use graph::BipartiteGraph;
use serve::{Daemon, ServeConfig};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Args {
    out: String,
    nets: usize,
    verts: usize,
    nnz: usize,
    seed: u64,
    partition: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_dist.json".into(),
        nets: 2500,
        verts: 2000,
        nnz: 30_000,
        seed: 42,
        partition: "block".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("bench_dist: {} needs a value", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--out" => args.out = value(i),
            "--nets" => args.nets = value(i).parse().expect("--nets"),
            "--verts" => args.verts = value(i).parse().expect("--verts"),
            "--nnz" => args.nnz = value(i).parse().expect("--nnz"),
            "--seed" => args.seed = value(i).parse().expect("--seed"),
            "--partition" => args.partition = value(i),
            other => {
                eprintln!("bench_dist: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    args
}

fn make_partition(kind: &str, n: usize, shards: usize, seed: u64) -> Partition {
    match kind {
        "block" => Partition::block(n, shards),
        "cyclic" => Partition::cyclic(n, shards),
        "random" => Partition::random(n, shards, seed),
        other => {
            eprintln!("bench_dist: unknown partition {other} (block|cyclic|random)");
            std::process::exit(2);
        }
    }
}

fn start_workers(n: usize) -> (Vec<Daemon>, Vec<String>) {
    let mut daemons = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..n {
        let cache = std::env::temp_dir().join(format!("bench-dist-{}-{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);
        let d = Daemon::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            pool_threads: 1,
            cache_dir: cache,
            read_timeout: Duration::from_secs(30),
            ..ServeConfig::default()
        })
        .expect("worker daemon start");
        addrs.push(d.local_addr().to_string());
        daemons.push(d);
    }
    (daemons, addrs)
}

fn main() {
    let args = parse_args();
    let m = sparse::gen::bipartite_uniform(args.nets, args.verts, args.nnz, args.seed);
    let g = BipartiteGraph::try_from_matrix(&m).expect("valid pattern");
    let n = g.n_vertices();
    let max_shards = *SHARD_COUNTS.iter().max().unwrap();
    let (mut daemons, addrs) = start_workers(max_shards);

    println!(
        "bench_dist: instance nets={} verts={} nnz={} seed={} partition={}",
        args.nets,
        args.verts,
        m.nnz(),
        args.seed,
        args.partition
    );

    let mut records = String::new();
    let mut failed = false;
    for (idx, &shards) in SHARD_COUNTS.iter().enumerate() {
        let partition = make_partition(&args.partition, n, shards, args.seed);
        let mut coord = Coordinator::connect(&addrs[..shards]).expect("connect workers");
        let t0 = Instant::now();
        let outcome = coord.color(&m, &partition).expect("instance is valid");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let verified = bgpc::verify::verify_bgpc(&g, &outcome.colors).is_ok();
        let degraded = outcome.degraded.is_some();
        if !verified || degraded {
            failed = true;
        }
        println!(
            "bench_dist: shards={shards} wall_ms={wall_ms:.2} rounds={} messages={} \
             colors={} verified={verified} degraded={degraded}",
            outcome.rounds(),
            outcome.total_messages(),
            outcome.num_colors
        );
        if idx > 0 {
            records.push_str(",\n");
        }
        records.push_str(&format!(
            "    {{\"shards\": {shards}, \"wall_ms\": {wall_ms:.3}, \"rounds\": {}, \
             \"messages\": {}, \"num_colors\": {}, \"verified\": {verified}, \
             \"degraded\": {degraded}}}",
            outcome.rounds(),
            outcome.total_messages(),
            outcome.num_colors
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"dist\",\n  \"instance\": {{\"nets\": {}, \"vertices\": {}, \
         \"nnz\": {}, \"seed\": {}}},\n  \"partition\": \"{}\",\n  \"isa\": \"{}\",\n  \
         \"records\": [\n{}\n  ]\n}}\n",
        args.nets,
        args.verts,
        m.nnz(),
        args.seed,
        args.partition,
        bgpc::simd::isa_features(),
        records
    );
    std::fs::write(&args.out, json).expect("write report");
    println!("bench_dist: wrote {}", args.out);

    for d in daemons.iter_mut() {
        d.shutdown();
    }
    if failed {
        eprintln!("bench_dist: FAIL — an outcome was unverified or degraded");
        std::process::exit(1);
    }
}
