//! Multi-process shard coordinator over the serve protocol.
//!
//! [`Coordinator`] turns N `serve` daemons into the ranks of a real
//! scale-out coloring run: it connects over TCP, installs one shard per
//! worker ([`serve::ShardRequest`] — owner-computes partitioning of the
//! vertex side via [`Partition`]), then drives BSP supersteps
//! ([`serve::SuperstepRequest`] / [`serve::FlushReply`]) until a round
//! re-colors nothing, harvests the owned assignments, and verifies the
//! assembled coloring in original vertex ids.
//!
//! Round `s`'s flushes carry the conflicts detected against round
//! `s - 1`'s coloring (the wire shifts detection by one round), so the
//! recorded [`SuperstepStats`] line up exactly with the in-process
//! [`DistRunner`]'s accounting: `conflicts[i] == colored[i + 1]` and the
//! final round reports zero conflicts. Workers color their interior
//! vertices *after* writing each round-1 flush — the interior/boundary
//! overlap — so the coordinator's routing work and the workers' interior
//! work proceed concurrently.
//!
//! **Degradation, never absence:** any worker failing mid-run (I/O
//! error, protocol violation, invalid harvest) aborts the sharded
//! attempt and the coordinator re-runs the same instance through the
//! in-process [`DistRunner`] on one node. The result is still a valid
//! coloring, tagged with a [`ShardOutcome::degraded`] reason.
//!
//! Like the in-process runner, rounds are bounded: past the cap the
//! coordinator harvests the speculative state, repairs the remaining
//! conflicts sequentially, and charges the merge one full boundary
//! exchange (see `bsp.rs` — the same accounting rule).

use std::net::TcpStream;

use bgpc::{Color, StampSet, UNCOLORED};
use graph::BipartiteGraph;
use serve::protocol::{
    read_frame, write_frame, FlushReply, FrameKind, ShardRequest, SuperstepRequest,
    DEFAULT_MAX_FRAME,
};

use crate::bsp::MAX_SUPERSTEPS;
use crate::{DistRunner, Partition, SuperstepStats};

/// Result of a sharded coloring run.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// Final colors (valid, complete, original vertex ids).
    pub colors: Vec<Color>,
    /// Distinct colors used.
    pub num_colors: usize,
    /// Per-superstep statistics, same shape as [`crate::DistResult`].
    pub supersteps: Vec<SuperstepStats>,
    /// Number of shards the run was partitioned across.
    pub n_shards: usize,
    /// `Some(reason)` when a worker failure forced the single-node
    /// fallback; `None` for a clean sharded run.
    pub degraded: Option<String>,
}

impl ShardOutcome {
    /// Number of supersteps (communication rounds) to convergence.
    pub fn rounds(&self) -> usize {
        self.supersteps.len()
    }

    /// Total message volume across rounds.
    pub fn total_messages(&self) -> usize {
        self.supersteps.iter().map(|s| s.messages).sum()
    }
}

/// A coordinator holding one persistent connection per worker daemon.
pub struct Coordinator {
    workers: Vec<Worker>,
    max_frame: u32,
    max_supersteps: usize,
}

struct Worker {
    addr: String,
    stream: TcpStream,
}

impl Coordinator {
    /// Connects to every worker address; fails if any is unreachable
    /// (callers wanting partial fleets filter addresses first).
    pub fn connect(addrs: &[String]) -> std::io::Result<Coordinator> {
        let mut workers = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let stream = TcpStream::connect(addr)?;
            let _ = stream.set_nodelay(true);
            workers.push(Worker { addr: addr.clone(), stream });
        }
        Ok(Coordinator {
            workers,
            max_frame: DEFAULT_MAX_FRAME,
            max_supersteps: MAX_SUPERSTEPS,
        })
    }

    /// Number of connected workers.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Overrides the round bound before the sequential-repair path
    /// (default [`MAX_SUPERSTEPS`]); primarily a test hook.
    pub fn with_max_supersteps(mut self, cap: usize) -> Self {
        self.max_supersteps = cap.max(1);
        self
    }

    /// Colors `matrix` across the connected workers under `partition`
    /// (one rank per worker, `partition.n_ranks()` must equal
    /// [`Coordinator::n_workers`]).
    ///
    /// Returns `Err` only when the *instance* is unusable (invalid
    /// pattern). Worker failures degrade instead: the instance is
    /// re-colored in process and the outcome tagged with the reason.
    pub fn color(
        &mut self,
        matrix: &sparse::Csr,
        partition: &Partition,
    ) -> Result<ShardOutcome, String> {
        let g = BipartiteGraph::try_from_matrix(matrix).map_err(|e| e.to_string())?;
        assert_eq!(partition.len(), g.n_vertices(), "partition covers every vertex");
        assert_eq!(
            partition.n_ranks(),
            self.workers.len(),
            "one shard per connected worker"
        );
        match self.try_sharded(&g, matrix, partition) {
            Ok(outcome) => Ok(outcome),
            Err(fail) => {
                let runner = DistRunner::new(&g, partition.clone());
                let r = runner.run();
                Ok(ShardOutcome {
                    colors: r.colors,
                    num_colors: r.num_colors,
                    supersteps: r.supersteps,
                    n_shards: partition.n_ranks(),
                    degraded: Some(format!("{fail}; recovered with a single-node run")),
                })
            }
        }
    }

    fn send(&mut self, rank: usize, kind: FrameKind, payload: &[u8]) -> Result<(), String> {
        let w = &mut self.workers[rank];
        write_frame(&mut w.stream, kind, payload, 0)
            .map_err(|e| format!("worker {rank} ({}) write failed: {e}", w.addr))
    }

    fn recv(&mut self, rank: usize, want: FrameKind) -> Result<Vec<u8>, String> {
        let w = &mut self.workers[rank];
        let (kind, payload) = read_frame(&mut w.stream, self.max_frame)
            .map_err(|e| format!("worker {rank} ({}) read failed: {e}", w.addr))?;
        if kind != want {
            let detail = String::from_utf8_lossy(&payload).into_owned();
            return Err(format!(
                "worker {rank} ({}) answered {kind:?} instead of {want:?}: {detail}",
                w.addr
            ));
        }
        Ok(payload)
    }

    /// One full round: write the request to every worker, then collect
    /// every Flush — writes go out before any read so the workers run
    /// their supersteps concurrently.
    fn round(&mut self, reqs: Vec<SuperstepRequest>) -> Result<Vec<FlushReply>, String> {
        for (r, req) in reqs.iter().enumerate() {
            self.send(r, FrameKind::Superstep, &req.encode())?;
        }
        let mut replies = Vec::with_capacity(self.workers.len());
        for r in 0..self.workers.len() {
            let payload = self.recv(r, FrameKind::Flush)?;
            replies.push(FlushReply::decode(&payload).map_err(|e| {
                format!("worker {r} ({}) sent a malformed flush: {e}", self.workers[r].addr)
            })?);
        }
        Ok(replies)
    }

    fn try_sharded(
        &mut self,
        g: &BipartiteGraph,
        matrix: &sparse::Csr,
        partition: &Partition,
    ) -> Result<ShardOutcome, String> {
        let p = self.workers.len();
        let n = g.n_vertices();
        let mut graph_bytes = Vec::new();
        sparse::bin_io::write_bin(&mut graph_bytes, matrix)
            .map_err(|e| format!("encoding graph bytes failed: {e}"))?;

        // Install one shard per worker; each ack is a Pong.
        for rank in 0..p {
            let req = ShardRequest {
                shard: rank as u32,
                n_shards: p as u32,
                owners: partition.owners().to_vec(),
                graph_bytes: graph_bytes.clone(),
            };
            self.send(rank, FrameKind::Shard, &req.encode())?;
        }
        for rank in 0..p {
            self.recv(rank, FrameKind::Pong)
                .map_err(|e| format!("shard install rejected: {e}"))?;
        }

        // Drive supersteps until a quiescent round. `inbox[r]` holds the
        // boundary colors routed to shard r from the previous round.
        let mut supersteps: Vec<SuperstepStats> = Vec::new();
        let mut inbox: Vec<Vec<(u32, i32)>> = vec![Vec::new(); p];
        let mut capped = false;
        let mut s = 1u32;
        loop {
            if s as usize > self.max_supersteps {
                capped = true;
                break;
            }
            let reqs: Vec<SuperstepRequest> = inbox
                .iter_mut()
                .map(|up| SuperstepRequest {
                    superstep: s,
                    harvest: false,
                    updates: std::mem::take(up),
                })
                .collect();
            let replies = self.round(reqs)?;
            let colored: usize = replies.iter().map(|f| f.colored as usize).sum();
            let conflicts: usize = replies.iter().map(|f| f.conflicts as usize).sum();
            let messages: usize = replies.iter().map(|f| f.messages.len()).sum();
            // The wire shifts conflict detection by one round: round s
            // reports the conflicts of round s-1's coloring, which close
            // the previously recorded superstep.
            if let Some(prev) = supersteps.last_mut() {
                prev.conflicts = conflicts;
            }
            if colored == 0 {
                // Quiescent probe round: every speculative color
                // survived detection; nothing to record.
                break;
            }
            supersteps.push(SuperstepStats { colored, messages, conflicts: 0 });
            for reply in replies {
                for (dest, v, c) in reply.messages {
                    let dest = dest as usize;
                    if dest >= p {
                        return Err(format!("flush routed to nonexistent shard {dest}"));
                    }
                    inbox[dest].push((v, c));
                }
            }
            s += 1;
        }

        // Harvest the owned assignments and assemble in original ids.
        let reqs: Vec<SuperstepRequest> = (0..p)
            .map(|_| SuperstepRequest { superstep: s, harvest: true, updates: Vec::new() })
            .collect();
        let replies = self.round(reqs)?;
        let mut colors = vec![UNCOLORED; n];
        for (rank, reply) in replies.iter().enumerate() {
            for &(_, v, c) in &reply.messages {
                let vu = v as usize;
                if vu >= n || partition.owner(vu) != rank {
                    return Err(format!("worker {rank} harvested a vertex it does not own"));
                }
                colors[vu] = c;
            }
        }
        if let Some(v) = colors.iter().position(|&c| c == UNCOLORED) {
            if !capped {
                return Err(format!("vertex {v} missing from the harvest"));
            }
        }

        if capped {
            // Bounded rounds, same rule as the in-process runner: repair
            // the stragglers sequentially against the merged views and
            // charge the implicit all-to-all one boundary exchange.
            let repaired = repair_conflicts(g, &mut colors);
            if let Some(prev) = supersteps.last_mut() {
                prev.conflicts = repaired;
            }
            let volume = DistRunner::new(g, partition.clone()).boundary_volume();
            supersteps.push(SuperstepStats {
                colored: repaired,
                messages: volume,
                conflicts: 0,
            });
        }

        bgpc::verify::verify_bgpc(g, &colors)
            .map_err(|e| format!("assembled sharded coloring failed verification: {e}"))?;
        let num_colors = bgpc::metrics::count_distinct_colors(&colors);
        Ok(ShardOutcome {
            colors,
            num_colors,
            supersteps,
            n_shards: p,
            degraded: None,
        })
    }
}

/// Sequentially re-colors every id-ordered conflict loser (and any
/// uncolored straggler) against the merged global state; returns how
/// many vertices were repaired.
fn repair_conflicts(g: &BipartiteGraph, colors: &mut [Color]) -> usize {
    let mut losers: Vec<u32> = Vec::new();
    for w in 0..g.n_vertices() {
        let cw = colors[w];
        let lost = cw == UNCOLORED
            || g.nets(w).iter().any(|&net| {
                g.vtxs(net as usize)
                    .iter()
                    .any(|&u| (u as usize) < w && colors[u as usize] == cw)
            });
        if lost {
            losers.push(w as u32);
        }
    }
    let mut fb = StampSet::with_capacity(g.max_net_size() + 16);
    for &w in &losers {
        colors[w as usize] = UNCOLORED;
    }
    for &w in &losers {
        let wu = w as usize;
        fb.advance();
        for &net in g.nets(wu) {
            for &u in g.vtxs(net as usize) {
                if u != w {
                    let cu = colors[u as usize];
                    if cu != UNCOLORED {
                        fb.insert(cu);
                    }
                }
            }
        }
        colors[wu] = fb.first_fit_from(0);
    }
    losers.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpc::verify::verify_bgpc;
    use serve::{Daemon, ServeConfig};
    use std::time::Duration;

    fn start_workers(n: usize, tag: &str) -> (Vec<Daemon>, Vec<String>) {
        let mut daemons = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..n {
            let cache = std::env::temp_dir().join(format!(
                "dist-coord-{tag}-{}-{i}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&cache);
            let d = Daemon::start(ServeConfig {
                addr: "127.0.0.1:0".into(),
                pool_threads: 1,
                cache_dir: cache,
                read_timeout: Duration::from_secs(10),
                ..ServeConfig::default()
            })
            .expect("worker daemon start");
            addrs.push(d.local_addr().to_string());
            daemons.push(d);
        }
        (daemons, addrs)
    }

    fn instance() -> sparse::Csr {
        sparse::gen::bipartite_uniform(60, 80, 900, 5)
    }

    #[test]
    fn sharded_run_matches_validity_across_partitioners() {
        let m = instance();
        let g = BipartiteGraph::from_matrix(&m);
        let (mut daemons, addrs) = start_workers(4, "valid");
        for partition in [
            Partition::block(g.n_vertices(), 4),
            Partition::cyclic(g.n_vertices(), 4),
            Partition::random(g.n_vertices(), 4, 3),
        ] {
            let mut coord = Coordinator::connect(&addrs).expect("connect");
            let outcome = coord.color(&m, &partition).expect("color");
            assert!(outcome.degraded.is_none(), "clean workers: {:?}", outcome.degraded);
            verify_bgpc(&g, &outcome.colors).unwrap();
            assert!(outcome.rounds() >= 1);
            assert_eq!(outcome.n_shards, 4);
            // The accounting invariant shared with the in-process runner.
            for w in outcome.supersteps.windows(2) {
                assert_eq!(w[0].conflicts, w[1].colored);
            }
            assert_eq!(outcome.supersteps.last().unwrap().conflicts, 0);
        }
        for d in daemons.iter_mut() {
            d.shutdown();
        }
    }

    #[test]
    fn single_worker_has_one_round_and_no_messages() {
        let m = instance();
        let g = BipartiteGraph::from_matrix(&m);
        let (mut daemons, addrs) = start_workers(1, "single");
        let mut coord = Coordinator::connect(&addrs).expect("connect");
        let outcome = coord
            .color(&m, &Partition::block(g.n_vertices(), 1))
            .expect("color");
        assert!(outcome.degraded.is_none());
        verify_bgpc(&g, &outcome.colors).unwrap();
        assert_eq!(outcome.rounds(), 1, "one shard cannot conflict");
        assert_eq!(outcome.total_messages(), 0);
        for d in daemons.iter_mut() {
            d.shutdown();
        }
    }

    #[test]
    fn worker_death_mid_superstep_degrades_to_a_valid_fallback() {
        // A rogue "worker" that accepts the connection, acks the shard
        // install, then hangs up before the first superstep — exactly
        // what a worker dying mid-run looks like to the coordinator.
        let rogue = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let rogue_addr = rogue.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (mut s, _) = rogue.accept().unwrap();
            let _ = read_frame(&mut s, DEFAULT_MAX_FRAME).unwrap();
            write_frame(&mut s, FrameKind::Pong, b"", 0).unwrap();
            // Drop the stream: the coordinator's next read fails.
        });
        let (mut daemons, mut addrs) = start_workers(1, "death");
        addrs.push(rogue_addr);
        let m = instance();
        let g = BipartiteGraph::from_matrix(&m);
        let mut coord = Coordinator::connect(&addrs).expect("connect");
        let outcome = coord
            .color(&m, &Partition::block(g.n_vertices(), 2))
            .expect("color degrades, not errors");
        let reason = outcome.degraded.expect("worker death must tag the outcome");
        assert!(reason.contains("single-node"), "reason: {reason}");
        verify_bgpc(&g, &outcome.colors).unwrap();
        t.join().unwrap();
        for d in daemons.iter_mut() {
            d.shutdown();
        }
    }

    #[test]
    fn capped_rounds_repair_sequentially_and_charge_the_merge() {
        let m = instance();
        let g = BipartiteGraph::from_matrix(&m);
        let partition = Partition::cyclic(g.n_vertices(), 4);
        let volume = DistRunner::new(&g, partition.clone()).boundary_volume();
        let (mut daemons, addrs) = start_workers(4, "capped");
        let mut coord = Coordinator::connect(&addrs).expect("connect").with_max_supersteps(1);
        let outcome = coord.color(&m, &partition).expect("color");
        assert!(outcome.degraded.is_none(), "the cap is policy, not failure");
        verify_bgpc(&g, &outcome.colors).unwrap();
        assert_eq!(outcome.rounds(), 2, "one speculative round + the repair round");
        let repair = outcome.supersteps.last().unwrap();
        assert_eq!(repair.messages, volume, "merge charged one boundary exchange");
        assert_eq!(repair.conflicts, 0);
        for d in daemons.iter_mut() {
            d.shutdown();
        }
    }
}
