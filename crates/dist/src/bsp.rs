//! The BSP speculative coloring loop.

use bgpc::{Color, StampSet, UNCOLORED};
use graph::BipartiteGraph;

use crate::Partition;

/// Round bound before the serial-cleanup fallback kicks in. Real
/// frameworks also bound their communication rounds; large
/// distance-2-clique instances (giant nets split across many ranks) can
/// otherwise take `Ω(max net / ranks)` supersteps.
pub const MAX_SUPERSTEPS: usize = 512;

/// splitmix64-style hash for the color-jitter draw.
#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b)
        .wrapping_add(0x85EBCA6B);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The `k`-th smallest color not in the forbidden set.
fn kth_available(fb: &StampSet, k: usize) -> Color {
    let mut col = fb.first_fit_from(0);
    for _ in 0..k {
        col = fb.first_fit_from(col + 1);
    }
    col
}

/// Sequentially colors every queued vertex against the merged owner
/// views, writing the result into all views (the bounded-round fallback).
fn serial_cleanup(
    g: &BipartiteGraph,
    partition: &Partition,
    views: &mut [Vec<Color>],
    queues: &[Vec<u32>],
    fb: &mut StampSet,
) {
    // Merge: the owner's view holds the authoritative color per vertex.
    let n = g.n_vertices();
    let mut global = vec![UNCOLORED; n];
    for (v, c) in global.iter_mut().enumerate() {
        *c = views[partition.owner(v)][v];
    }
    // Queued vertices are recolored against the merged state.
    for queue in queues {
        for &w in queue {
            global[w as usize] = UNCOLORED;
        }
    }
    for queue in queues {
        for &w in queue {
            let wu = w as usize;
            fb.advance();
            for &net in g.nets(wu) {
                for &u in g.vtxs(net as usize) {
                    if u != w {
                        let cu = global[u as usize];
                        if cu != UNCOLORED {
                            fb.insert(cu);
                        }
                    }
                }
            }
            global[wu] = fb.first_fit_from(0);
        }
    }
    for view in views.iter_mut() {
        view.copy_from_slice(&global);
    }
}

/// Accounting for one superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperstepStats {
    /// Vertices colored this superstep (across ranks).
    pub colored: usize,
    /// Boundary messages sent (one per (vertex, interested rank) pair).
    pub messages: usize,
    /// Conflicts detected after the flush (vertices re-queued).
    pub conflicts: usize,
}

/// Result of a distributed coloring run.
#[derive(Clone, Debug)]
pub struct DistResult {
    /// Final colors (valid, complete).
    pub colors: Vec<Color>,
    /// Distinct colors used.
    pub num_colors: usize,
    /// Per-superstep statistics.
    pub supersteps: Vec<SuperstepStats>,
}

impl DistResult {
    /// Number of supersteps (communication rounds) to convergence.
    pub fn rounds(&self) -> usize {
        self.supersteps.len()
    }

    /// Total message volume.
    pub fn total_messages(&self) -> usize {
        self.supersteps.iter().map(|s| s.messages).sum()
    }
}

/// A deterministic BSP simulation of distributed speculative BGPC.
///
/// ```
/// use dist::{DistRunner, Partition};
/// use graph::BipartiteGraph;
/// let m = sparse::gen::bipartite_uniform(30, 40, 300, 1);
/// let g = BipartiteGraph::from_matrix(&m);
/// let runner = DistRunner::new(&g, Partition::block(g.n_vertices(), 4));
/// let result = runner.run();
/// bgpc::verify::verify_bgpc(&g, &result.colors).unwrap();
/// assert!(result.rounds() >= 1);
/// ```
pub struct DistRunner<'g> {
    graph: &'g BipartiteGraph,
    partition: Partition,
    /// interested[v] = ranks other than the owner that must learn v's
    /// color (owners of v's distance-2 neighbors).
    interested: Vec<Vec<u32>>,
    /// Round bound before the serial-cleanup fallback (see
    /// [`DistRunner::with_max_supersteps`]).
    max_supersteps: usize,
}

impl<'g> DistRunner<'g> {
    /// Prepares a runner: computes, per vertex, the set of remote ranks
    /// owning any of its distance-2 neighbors.
    pub fn new(graph: &'g BipartiteGraph, partition: Partition) -> Self {
        assert_eq!(partition.len(), graph.n_vertices());
        let p = partition.n_ranks();
        let mut interested = vec![Vec::new(); graph.n_vertices()];
        let mut mark = vec![usize::MAX; p];
        for (v, interested_v) in interested.iter_mut().enumerate() {
            let own = partition.owner(v);
            for &net in graph.nets(v) {
                for &u in graph.vtxs(net as usize) {
                    let r = partition.owner(u as usize);
                    if r != own && mark[r] != v {
                        mark[r] = v;
                        interested_v.push(r as u32);
                    }
                }
            }
        }
        Self {
            graph,
            partition,
            interested,
            max_supersteps: MAX_SUPERSTEPS,
        }
    }

    /// Overrides the round bound before the serial-cleanup fallback
    /// (default [`MAX_SUPERSTEPS`]). Primarily a test hook: a tiny bound
    /// forces the fallback on instances that would otherwise converge.
    pub fn with_max_supersteps(mut self, cap: usize) -> Self {
        self.max_supersteps = cap.max(1);
        self
    }

    /// One full boundary exchange's message volume: the sum over all
    /// vertices of their interested remote-rank counts. This is what a
    /// flush of every boundary vertex costs, and what the serial-cleanup
    /// fallback charges for its implicit all-to-all view merge.
    pub fn boundary_volume(&self) -> usize {
        self.interested.iter().map(|i| i.len()).sum()
    }

    /// Fraction of vertices with at least one interested remote rank —
    /// the boundary ratio of the partition.
    pub fn boundary_fraction(&self) -> f64 {
        if self.interested.is_empty() {
            return 0.0;
        }
        self.interested.iter().filter(|i| !i.is_empty()).count() as f64
            / self.interested.len() as f64
    }

    /// Runs the speculative BSP loop to a valid coloring.
    ///
    /// Each superstep: (1) every rank first-fit-colors its queued vertices
    /// against its *local view* (stale for remote vertices); (2) boundary
    /// colors are flushed; (3) every rank re-queues its owned vertices
    /// that lost an id-ordered conflict. Interior vertices can never
    /// conflict (their whole neighborhood is owned), mirroring the real
    /// frameworks' interior/boundary split.
    pub fn run(&self) -> DistResult {
        let g = self.graph;
        let n = g.n_vertices();
        let p = self.partition.n_ranks();
        // views[r][v] = rank r's current knowledge of v's color.
        let mut views: Vec<Vec<Color>> = vec![vec![UNCOLORED; n]; p];
        let mut queues = self.partition.rank_vertices();
        let mut fb = StampSet::with_capacity(g.max_net_size() + 16);
        let mut supersteps = Vec::new();

        let mut superstep = 0usize;
        while queues.iter().any(|q| !q.is_empty()) {
            superstep += 1;
            if superstep > self.max_supersteps {
                // Serial cleanup, as real frameworks bound their rounds:
                // merge the owners' views and color the stragglers
                // sequentially (conflict-free by construction). Merging
                // every owner's view is an implicit all-to-all, so the
                // step is charged one full boundary exchange — otherwise
                // total_messages() under-reports exactly on the worst
                // instances, the ones that hit the bound.
                serial_cleanup(g, &self.partition, &mut views, &queues, &mut fb);
                let colored: usize = queues.iter().map(|q| q.len()).sum();
                supersteps.push(SuperstepStats {
                    colored,
                    messages: self.boundary_volume(),
                    conflicts: 0,
                });
                break;
            }

            // Phase 1: each rank colors its queue against its own view.
            // From the second superstep on, re-colorings jitter the color
            // choice (k-th available instead of first available, with k
            // drawn from a per-vertex hash and a window that widens with
            // the superstep) — the standard symmetry-breaking trick:
            // plain first-fit would make every rank's copy of a large net
            // collide on the same small colors forever.
            let window = if superstep == 1 {
                1
            } else {
                (superstep * 4).min(64)
            };
            let mut outbox: Vec<(u32, u32, Color)> = Vec::new(); // (dest, vertex, color)
            let mut colored = 0usize;
            for (r, queue) in queues.iter().enumerate() {
                let view = &mut views[r];
                for &w in queue {
                    let wu = w as usize;
                    fb.advance();
                    for &net in g.nets(wu) {
                        for &u in g.vtxs(net as usize) {
                            if u != w {
                                let cu = view[u as usize];
                                if cu != UNCOLORED {
                                    fb.insert(cu);
                                }
                            }
                        }
                    }
                    let k = if window <= 1 {
                        0
                    } else {
                        (mix(w as u64, superstep as u64) % window as u64) as usize
                    };
                    let col = kth_available(&fb, k);
                    view[wu] = col;
                    colored += 1;
                    for &dest in &self.interested[wu] {
                        outbox.push((dest, w, col));
                    }
                }
            }

            // Phase 2: flush boundary messages.
            let messages = outbox.len();
            for (dest, v, col) in outbox {
                views[dest as usize][v as usize] = col;
            }

            // Phase 3: conflict detection on synchronized views.
            let mut conflicts = 0usize;
            let mut next_queues: Vec<Vec<u32>> = vec![Vec::new(); p];
            for (r, queue) in queues.iter().enumerate() {
                let view = &views[r];
                for &w in queue {
                    let wu = w as usize;
                    let cw = view[wu];
                    let lost = g.nets(wu).iter().any(|&net| {
                        g.vtxs(net as usize)
                            .iter()
                            .any(|&u| u < w && view[u as usize] == cw)
                    });
                    if lost {
                        next_queues[r].push(w);
                        conflicts += 1;
                    }
                }
            }

            supersteps.push(SuperstepStats {
                colored,
                messages,
                conflicts,
            });
            queues = next_queues;
        }

        // Assemble the global coloring from each owner's view.
        let mut colors = vec![UNCOLORED; n];
        for (v, c) in colors.iter_mut().enumerate() {
            *c = views[self.partition.owner(v)][v];
        }
        let num_colors = bgpc::metrics::count_distinct_colors(&colors);
        DistResult {
            colors,
            num_colors,
            supersteps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpc::verify::verify_bgpc;
    use graph::Ordering;

    fn instance() -> BipartiteGraph {
        BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(60, 80, 900, 5))
    }

    #[test]
    fn single_rank_matches_sequential() {
        let g = instance();
        let runner = DistRunner::new(&g, Partition::block(g.n_vertices(), 1));
        let r = runner.run();
        verify_bgpc(&g, &r.colors).unwrap();
        assert_eq!(r.rounds(), 1, "one rank cannot conflict");
        assert_eq!(r.total_messages(), 0);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let (seq, k) = bgpc::seq::color_bgpc_seq(&g, &order);
        assert_eq!(r.colors, seq);
        assert_eq!(r.num_colors, k);
    }

    #[test]
    fn multi_rank_converges_and_is_valid() {
        let g = instance();
        for p in [2, 4, 8] {
            for partition in [
                Partition::block(g.n_vertices(), p),
                Partition::cyclic(g.n_vertices(), p),
                Partition::random(g.n_vertices(), p, 3),
            ] {
                let runner = DistRunner::new(&g, partition);
                let r = runner.run();
                verify_bgpc(&g, &r.colors).unwrap();
                assert!(r.num_colors >= g.max_net_size());
            }
        }
    }

    #[test]
    fn conflicts_only_on_boundary() {
        // Two disjoint halves: nets {0..4} touch vertices 0..10, nets
        // {5..9} touch vertices 10..20, block partition splits exactly
        // between them → no boundary, no conflicts, one superstep.
        let mut rows = Vec::new();
        for i in 0..5 {
            rows.push(vec![2 * i as u32, 2 * i as u32 + 1]);
        }
        for i in 0..5 {
            rows.push(vec![10 + 2 * i as u32, 10 + 2 * i as u32 + 1]);
        }
        let m = sparse::Csr::from_rows(20, &rows);
        let g = BipartiteGraph::from_matrix(&m);
        let runner = DistRunner::new(&g, Partition::block(20, 2));
        assert_eq!(runner.boundary_fraction(), 0.0);
        let r = runner.run();
        assert_eq!(r.rounds(), 1);
        assert_eq!(r.supersteps[0].conflicts, 0);
        verify_bgpc(&g, &r.colors).unwrap();
    }

    #[test]
    fn cyclic_partition_has_larger_boundary_than_block() {
        let m = sparse::gen::banded(200, 3, 1.0, 1);
        let g = BipartiteGraph::from_matrix(&m);
        let block = DistRunner::new(&g, Partition::block(200, 4));
        let cyclic = DistRunner::new(&g, Partition::cyclic(200, 4));
        assert!(
            cyclic.boundary_fraction() > block.boundary_fraction(),
            "cyclic {} vs block {}",
            cyclic.boundary_fraction(),
            block.boundary_fraction()
        );
        // and correspondingly more messages
        let rb = block.run();
        let rc = cyclic.run();
        verify_bgpc(&g, &rb.colors).unwrap();
        verify_bgpc(&g, &rc.colors).unwrap();
        assert!(rc.total_messages() > rb.total_messages());
    }

    #[test]
    fn superstep_queue_shrinks_monotonically_in_colored() {
        let g = instance();
        let runner = DistRunner::new(&g, Partition::cyclic(g.n_vertices(), 8));
        let r = runner.run();
        for w in r.supersteps.windows(2) {
            assert!(
                w[1].colored <= w[0].colored,
                "queue should shrink: {:?}",
                r.supersteps
            );
        }
        // conflicts of step i == colored of step i+1
        for w in r.supersteps.windows(2) {
            assert_eq!(w[0].conflicts, w[1].colored);
        }
        assert_eq!(r.supersteps.last().unwrap().conflicts, 0);
    }

    #[test]
    fn forced_fallback_charges_boundary_volume() {
        // A tiny round bound forces the serial-cleanup path on a
        // conflict-heavy cyclic partition. The cleanup merges every
        // owner's view — an implicit all-to-all — so its superstep must
        // charge one full boundary exchange, not zero.
        let g = instance();
        let runner = DistRunner::new(&g, Partition::cyclic(g.n_vertices(), 8))
            .with_max_supersteps(1);
        let volume = runner.boundary_volume();
        assert!(volume > 0, "cyclic partition of a dense instance has boundary");
        let r = runner.run();
        verify_bgpc(&g, &r.colors).unwrap();
        assert_eq!(r.rounds(), 2, "one speculative round + the cleanup round");
        let cleanup = r.supersteps.last().unwrap();
        assert_eq!(cleanup.messages, volume, "merge charged as one boundary exchange");
        assert!(cleanup.colored > 0, "the bound only trips with stragglers left");
        assert_eq!(cleanup.conflicts, 0, "serial cleanup is conflict-free");
        // And the charge is visible in the aggregate.
        assert!(r.total_messages() > r.supersteps[0].messages);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_matrix(&sparse::Csr::empty(0, 0));
        let runner = DistRunner::new(&g, Partition::block(0, 4));
        let r = runner.run();
        assert!(r.colors.is_empty());
        assert_eq!(r.rounds(), 0);
    }
}
