//! Property tests for the BSP distributed baseline: any partition of any
//! bipartite pattern must converge to a valid coloring, and one rank must
//! equal the sequential greedy.

use proptest::prelude::*;

use dist::{DistRunner, Partition};
use graph::BipartiteGraph;
use sparse::Csr;

fn arb_bipartite() -> impl Strategy<Value = Csr> {
    (1usize..16, 1usize..20).prop_flat_map(|(nrows, ncols)| {
        proptest::collection::vec(
            proptest::collection::vec(0..ncols as u32, 0..8usize),
            nrows,
        )
        .prop_map(move |rows| Csr::from_rows(ncols, &rows))
    })
}

fn arb_partition(n: usize) -> impl Strategy<Value = Partition> {
    (1usize..6, 0u64..1000).prop_map(move |(p, seed)| match seed % 3 {
        0 => Partition::block(n, p),
        1 => Partition::cyclic(n, p),
        _ => Partition::random(n, p, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_partition_converges_to_valid_coloring(
        matrix in arb_bipartite(),
        pseed in 0u64..1000,
        ranks in 1usize..6,
    ) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let n = g.n_vertices();
        let partition = match pseed % 3 {
            0 => Partition::block(n, ranks),
            1 => Partition::cyclic(n, ranks),
            _ => Partition::random(n, ranks, pseed),
        };
        let runner = DistRunner::new(&g, partition);
        let r = runner.run();
        prop_assert!(bgpc::verify::verify_bgpc(&g, &r.colors).is_ok());
        prop_assert!(r.num_colors >= g.max_net_size());
        // last superstep has no conflicts by definition of termination
        if let Some(last) = r.supersteps.last() {
            prop_assert_eq!(last.conflicts, 0);
        }
    }

    #[test]
    fn one_rank_equals_sequential(matrix in arb_bipartite()) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let runner = DistRunner::new(&g, Partition::block(g.n_vertices(), 1));
        let r = runner.run();
        let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let (seq, k) = bgpc::seq::color_bgpc_seq(&g, &order);
        prop_assert_eq!(r.num_colors, k);
        prop_assert_eq!(r.total_messages(), 0);
        prop_assert_eq!(r.colors, seq);
    }

    #[test]
    fn partitions_are_total_assignments(n in 0usize..200, p in 1usize..8, seed in 0u64..100) {
        for partition in [
            Partition::block(n, p),
            Partition::cyclic(n, p),
            Partition::random(n, p, seed),
        ] {
            prop_assert_eq!(partition.len(), n);
            let per_rank = partition.rank_vertices();
            let total: usize = per_rank.iter().map(|r| r.len()).sum();
            prop_assert_eq!(total, n);
            for (r, vs) in per_rank.iter().enumerate() {
                for &v in vs {
                    prop_assert_eq!(partition.owner(v as usize), r);
                }
            }
        }
    }
}

#[test]
fn partition_strategy_used_by_arb_helper_compiles() {
    // keep the helper exercised even though proptest inlines its own
    let strat = arb_partition(10);
    let _ = &strat;
}
