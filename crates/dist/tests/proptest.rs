//! Property tests for the BSP distributed baseline: any partition of any
//! bipartite pattern must converge to a valid coloring, and one rank must
//! equal the sequential greedy.
//!
//! Built on the in-repo `minicheck` choice-stream harness.

use minicheck::{check, prop_assert, prop_assert_eq, Gen};

use dist::{DistRunner, Partition};
use graph::BipartiteGraph;
use sparse::Csr;

fn arb_bipartite(g: &mut Gen) -> Csr {
    let nrows = g.usize_in(1..16);
    let ncols = g.usize_in(1..20);
    let rows: Vec<Vec<u32>> =
        (0..nrows).map(|_| g.vec_of(0..8, |g| g.u32_in(0..ncols as u32))).collect();
    Csr::from_rows(ncols, &rows)
}

fn arb_partition(g: &mut Gen, n: usize) -> Partition {
    let p = g.usize_in(1..6);
    let seed = g.u64_in(0..1000);
    match seed % 3 {
        0 => Partition::block(n, p),
        1 => Partition::cyclic(n, p),
        _ => Partition::random(n, p, seed),
    }
}

#[test]
fn any_partition_converges_to_valid_coloring() {
    check("any_partition_converges_to_valid_coloring", 64, |gen| {
        let matrix = arb_bipartite(gen);
        let g = BipartiteGraph::from_matrix(&matrix);
        let partition = arb_partition(gen, g.n_vertices());
        let runner = DistRunner::new(&g, partition);
        let r = runner.run();
        prop_assert!(bgpc::verify::verify_bgpc(&g, &r.colors).is_ok());
        prop_assert!(r.num_colors >= g.max_net_size());
        // last superstep has no conflicts by definition of termination
        if let Some(last) = r.supersteps.last() {
            prop_assert_eq!(last.conflicts, 0);
        }
        Ok(())
    });
}

#[test]
fn one_rank_equals_sequential() {
    check("one_rank_equals_sequential", 64, |gen| {
        let matrix = arb_bipartite(gen);
        let g = BipartiteGraph::from_matrix(&matrix);
        let runner = DistRunner::new(&g, Partition::block(g.n_vertices(), 1));
        let r = runner.run();
        let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let (seq, k) = bgpc::seq::color_bgpc_seq(&g, &order);
        prop_assert_eq!(r.num_colors, k);
        prop_assert_eq!(r.total_messages(), 0);
        prop_assert_eq!(r.colors, seq);
        Ok(())
    });
}

#[test]
fn partitions_are_total_assignments() {
    check("partitions_are_total_assignments", 64, |gen| {
        let n = gen.usize_in(0..200);
        let p = gen.usize_in(1..8);
        let seed = gen.u64_in(0..100);
        for partition in [
            Partition::block(n, p),
            Partition::cyclic(n, p),
            Partition::random(n, p, seed),
        ] {
            prop_assert_eq!(partition.len(), n);
            let per_rank = partition.rank_vertices();
            let total: usize = per_rank.iter().map(|r| r.len()).sum();
            prop_assert_eq!(total, n);
            for (r, vs) in per_rank.iter().enumerate() {
                for &v in vs {
                    prop_assert_eq!(partition.owner(v as usize), r);
                }
            }
        }
        Ok(())
    });
}
