//! Degenerate-instance battery for the distributed paths.
//!
//! The sharded coordinator inherits every edge case of the in-process
//! runner, so both are pinned here: more ranks than vertices, ranks that
//! own nothing, and a single giant net spanning every shard — each
//! across block/cyclic/random partitions.

use bgpc::verify::verify_bgpc;
use dist::{Coordinator, DistRunner, Partition};
use graph::BipartiteGraph;
use serve::{Daemon, ServeConfig};
use std::time::Duration;

fn partitions(n: usize, p: usize) -> Vec<Partition> {
    vec![
        Partition::block(n, p),
        Partition::cyclic(n, p),
        Partition::random(n, p, 9),
    ]
}

#[test]
fn more_ranks_than_vertices() {
    // 3 vertices, 8 ranks: most ranks own nothing, whatever the
    // partitioner.
    let m = sparse::Csr::from_rows(3, &[vec![0, 1], vec![1, 2]]);
    let g = BipartiteGraph::from_matrix(&m);
    for partition in partitions(3, 8) {
        let r = DistRunner::new(&g, partition).run();
        verify_bgpc(&g, &r.colors).unwrap();
        assert_eq!(r.colors.len(), 3);
    }
}

#[test]
fn explicitly_empty_ranks() {
    // 4 ranks declared, every vertex owned by ranks 0 and 2 — ranks 1
    // and 3 must idle through the whole run without corrupting it.
    let m = sparse::gen::bipartite_uniform(20, 16, 120, 3);
    let g = BipartiteGraph::from_matrix(&m);
    let owners: Vec<u32> = (0..g.n_vertices()).map(|v| if v % 2 == 0 { 0 } else { 2 }).collect();
    let partition = Partition::from_owners(owners, 4);
    let runner = DistRunner::new(&g, partition);
    let r = runner.run();
    verify_bgpc(&g, &r.colors).unwrap();
}

#[test]
fn single_giant_net_spanning_all_ranks() {
    // One net covering every vertex: the whole instance is one
    // distance-2 clique, every vertex is boundary, and the coloring
    // needs exactly n colors. The worst case for speculative rounds.
    let n = 24u32;
    let m = sparse::Csr::from_rows(n as usize, &[(0..n).collect::<Vec<u32>>()]);
    let g = BipartiteGraph::from_matrix(&m);
    for p in [2, 4, 8] {
        for partition in partitions(n as usize, p) {
            let runner = DistRunner::new(&g, partition);
            assert_eq!(runner.boundary_fraction(), 1.0);
            let r = runner.run();
            verify_bgpc(&g, &r.colors).unwrap();
            assert_eq!(r.num_colors, n as usize, "a clique needs n colors");
        }
    }
}

#[test]
fn giant_net_under_a_tiny_round_cap_still_valid() {
    let n = 40u32;
    let m = sparse::Csr::from_rows(n as usize, &[(0..n).collect::<Vec<u32>>()]);
    let g = BipartiteGraph::from_matrix(&m);
    for partition in partitions(n as usize, 8) {
        let runner = DistRunner::new(&g, partition).with_max_supersteps(2);
        let volume = runner.boundary_volume();
        let r = runner.run();
        verify_bgpc(&g, &r.colors).unwrap();
        let last = r.supersteps.last().unwrap();
        if r.rounds() == 3 {
            // The cap tripped: the cleanup round charges the merge.
            assert_eq!(last.messages, volume);
        }
    }
}

fn start_workers(n: usize, tag: &str) -> (Vec<Daemon>, Vec<String>) {
    let mut daemons = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..n {
        let cache = std::env::temp_dir().join(format!(
            "dist-degenerate-{tag}-{}-{i}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&cache);
        let d = Daemon::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            pool_threads: 1,
            cache_dir: cache,
            read_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        })
        .expect("worker daemon start");
        addrs.push(d.local_addr().to_string());
        daemons.push(d);
    }
    (daemons, addrs)
}

#[test]
fn sharded_coordinator_inherits_the_degenerate_cases() {
    let (mut daemons, addrs) = start_workers(4, "coord");

    // Giant net across all 4 shards.
    let n = 16u32;
    let giant = sparse::Csr::from_rows(n as usize, &[(0..n).collect::<Vec<u32>>()]);
    let g = BipartiteGraph::from_matrix(&giant);
    for partition in partitions(n as usize, 4) {
        let mut coord = Coordinator::connect(&addrs).expect("connect");
        let outcome = coord.color(&giant, &partition).expect("color");
        assert!(outcome.degraded.is_none(), "{:?}", outcome.degraded);
        verify_bgpc(&g, &outcome.colors).unwrap();
        assert_eq!(outcome.num_colors, n as usize);
    }

    // More ranks than vertices: 3 vertices over 4 worker shards.
    let tiny = sparse::Csr::from_rows(3, &[vec![0, 1], vec![1, 2]]);
    let tg = BipartiteGraph::from_matrix(&tiny);
    for partition in partitions(3, 4) {
        let mut coord = Coordinator::connect(&addrs).expect("connect");
        let outcome = coord.color(&tiny, &partition).expect("color");
        assert!(outcome.degraded.is_none());
        verify_bgpc(&tg, &outcome.colors).unwrap();
    }

    // Empty graph: zero vertices, zero rounds, nothing to flush.
    let empty = sparse::Csr::empty(0, 0);
    let eg = BipartiteGraph::from_matrix(&empty);
    let mut coord = Coordinator::connect(&addrs).expect("connect");
    let outcome = coord
        .color(&empty, &Partition::block(0, 4))
        .expect("color");
    assert!(outcome.degraded.is_none());
    assert!(outcome.colors.is_empty());
    assert_eq!(outcome.rounds(), 0);
    verify_bgpc(&eg, &outcome.colors).unwrap();

    for d in daemons.iter_mut() {
        d.shutdown();
    }
}
