//! Flag parsing for the `bgpc-cli` front end (no external parser crate —
//! the offline dependency budget goes to the algorithms).

use bgpc::Schedule;
use graph::Ordering;
use sparse::{Dataset, IndexWidth, LocalityOrder};

/// Which coloring problem to solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Problem {
    /// Bipartite-graph partial coloring of the columns.
    Bgpc,
    /// Distance-2 coloring (requires a symmetric pattern).
    D2gc,
    /// Distance-1 coloring (requires a symmetric pattern).
    D1gc,
    /// Distance-k coloring with the given k.
    Dk(usize),
}

/// Where the input pattern comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum Input {
    /// Matrix Market file path.
    Mtx(String),
    /// Binary cache file path (`sparse::bin_io` format).
    Bin(String),
    /// Synthetic analogue of a paper dataset at a scale.
    Dataset { dataset: Dataset, scale: f64, seed: u64 },
}

/// Parsed `color` command configuration.
#[derive(Clone, Debug)]
pub struct ColorArgs {
    /// Input pattern.
    pub input: Input,
    /// Problem variant.
    pub problem: Problem,
    /// Algorithm schedule.
    pub schedule: Schedule,
    /// Vertex processing order.
    pub ordering: Ordering,
    /// Team size.
    pub threads: usize,
    /// Row-pointer index width (`None` = pick by nonzero count).
    pub index_width: Option<IndexWidth>,
    /// Locality relabeling applied to the pattern before coloring; the
    /// reported coloring is always mapped back to original ids.
    pub relabel: LocalityOrder,
    /// Run the iterative-recoloring post-pass.
    pub recolor: bool,
    /// Optional output path for `vertex color` lines.
    pub output: Option<String>,
    /// Optional chrome-trace output path; installs a [`trace::Recorder`]
    /// on the pool for the run.
    pub trace: Option<String>,
    /// Print per-iteration thread counters and the imbalance table (also
    /// installs a recorder).
    pub metrics: bool,
    /// Pin team members to CPUs in topology order and steal near-first.
    pub pin: bool,
    /// Let the engine pick the configuration from instance features
    /// (explicitly passed flags still override the engine's choice) and
    /// enable the online between-iteration tuner.
    pub autotune: bool,
    /// `--schedule` was passed explicitly (engine override tracking).
    pub explicit_schedule: bool,
    /// `--sched` was passed explicitly.
    pub explicit_sched: bool,
    /// `--kernel` was passed explicitly.
    pub explicit_kernel: bool,
    /// `--relabel` was passed explicitly.
    pub explicit_relabel: bool,
}

/// Usage text for the `color` command.
pub const COLOR_USAGE: &str = "\
usage: bgpc-cli color [--mtx FILE | --bin FILE | --dataset NAME [--scale F] [--seed N]]
                      [--problem bgpc|d2gc|d1gc|dK] [--schedule NAME]
                      [--order natural|random:SEED|largest-first|smallest-last|incidence-degree]
                      [--index-width auto|u32|u64] [--relabel none|degree|bfs]
                      [--sched dynamic|steal] [--kernel scalar|simd|auto] [--pin]
                      [--threads N] [--recolor] [--output FILE]
                      [--trace FILE] [--metrics] [--autotune]

schedules: V-V, V-V-64, V-V-64D, V-Ninf, V-N1, V-N2, N1-N2, N2-N2
           (append -B1 or -B2 for the balancing heuristics)
datasets:  20M_movielens af_shell10 bone010 channel coPapersDBLP HV15R
           nlpkkt120 uk-2002";

impl ColorArgs {
    /// Parses the flag list following the `color` subcommand.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut mtx: Option<String> = None;
        let mut bin: Option<String> = None;
        let mut dataset: Option<Dataset> = None;
        let mut scale = 0.01;
        let mut seed = 20170814u64;
        let mut problem = Problem::Bgpc;
        let mut schedule = Schedule::n1_n2();
        let mut ordering = Ordering::Natural;
        let mut threads = par::available_threads();
        let mut index_width: Option<IndexWidth> = None;
        let mut relabel = LocalityOrder::None;
        let mut sched = par::Sched::Dynamic;
        let mut kernel = bgpc::KernelImpl::Auto;
        let mut pin = false;
        let mut recolor = false;
        let mut output = None;
        let mut trace = None;
        let mut metrics = false;
        let mut autotune = false;
        let mut explicit_schedule = false;
        let mut explicit_sched = false;
        let mut explicit_kernel = false;
        let mut explicit_relabel = false;

        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: usize| -> Result<&String, String> {
                args.get(i + 1)
                    .ok_or_else(|| format!("missing value after {flag}"))
            };
            match flag {
                "--mtx" => {
                    mtx = Some(value(i)?.clone());
                    i += 2;
                }
                "--bin" => {
                    bin = Some(value(i)?.clone());
                    i += 2;
                }
                "--dataset" => {
                    dataset = Some(
                        Dataset::from_name(value(i)?)
                            .ok_or_else(|| format!("unknown dataset `{}`", args[i + 1]))?,
                    );
                    i += 2;
                }
                "--scale" => {
                    scale = value(i)?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                    i += 2;
                }
                "--seed" => {
                    seed = value(i)?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                    i += 2;
                }
                "--problem" => {
                    problem = parse_problem(value(i)?)?;
                    i += 2;
                }
                "--schedule" => {
                    schedule = Schedule::from_name(value(i)?)
                        .ok_or_else(|| format!("unknown schedule `{}`", args[i + 1]))?;
                    explicit_schedule = true;
                    i += 2;
                }
                "--order" => {
                    ordering = parse_ordering(value(i)?)?;
                    i += 2;
                }
                "--threads" => {
                    threads = value(i)?.parse().map_err(|e| format!("bad --threads: {e}"))?;
                    i += 2;
                }
                "--index-width" => {
                    let v = value(i)?;
                    index_width = if v.eq_ignore_ascii_case("auto") {
                        None
                    } else {
                        Some(
                            IndexWidth::from_name(v)
                                .ok_or_else(|| format!("unknown index width `{v}`"))?,
                        )
                    };
                    i += 2;
                }
                "--relabel" => {
                    relabel = LocalityOrder::from_name(value(i)?)
                        .ok_or_else(|| format!("unknown relabeling `{}`", args[i + 1]))?;
                    explicit_relabel = true;
                    i += 2;
                }
                "--sched" => {
                    sched = par::Sched::from_name(value(i)?)
                        .ok_or_else(|| format!("unknown chunk scheduler `{}`", args[i + 1]))?;
                    explicit_sched = true;
                    i += 2;
                }
                "--kernel" => {
                    kernel = bgpc::KernelImpl::from_name(value(i)?)
                        .ok_or_else(|| format!("unknown kernel `{}`", args[i + 1]))?;
                    explicit_kernel = true;
                    i += 2;
                }
                "--autotune" => {
                    autotune = true;
                    i += 1;
                }
                "--pin" => {
                    pin = true;
                    i += 1;
                }
                "--recolor" => {
                    recolor = true;
                    i += 1;
                }
                "--output" => {
                    output = Some(value(i)?.clone());
                    i += 2;
                }
                "--trace" => {
                    trace = Some(value(i)?.clone());
                    i += 2;
                }
                "--metrics" => {
                    metrics = true;
                    i += 1;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }

        let input = match (mtx, bin, dataset) {
            (Some(path), None, None) => Input::Mtx(path),
            (None, Some(path), None) => Input::Bin(path),
            (None, None, Some(dataset)) => Input::Dataset { dataset, scale, seed },
            (None, None, None) => {
                return Err("need --mtx FILE, --bin FILE, or --dataset NAME".into())
            }
            _ => return Err("--mtx, --bin, and --dataset are exclusive".into()),
        };
        Ok(Self {
            input,
            problem,
            schedule: schedule.with_sched(sched).with_kernel(kernel),
            ordering,
            threads,
            index_width,
            relabel,
            recolor,
            output,
            trace,
            metrics,
            pin,
            autotune,
            explicit_schedule,
            explicit_sched,
            explicit_kernel,
            explicit_relabel,
        })
    }

    /// The explicitly passed flags as engine overrides: under
    /// `--autotune` the engine proposes a config and these always win.
    /// `--index-width auto` is *not* an override (it asks for the
    /// heuristic, which the engine subsumes); any concrete width is.
    pub fn engine_overrides(&self) -> bgpc::Overrides {
        bgpc::Overrides {
            schedule: self.explicit_schedule.then(|| self.schedule.clone()),
            sched: self.explicit_sched.then_some(self.schedule.sched),
            kernel: self.explicit_kernel.then_some(self.schedule.kernel),
            relabel: self.explicit_relabel.then_some(self.relabel),
            index_width: self.index_width,
            forbidden: None,
        }
    }
}

fn parse_problem(s: &str) -> Result<Problem, String> {
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "bgpc" => Ok(Problem::Bgpc),
        "d2gc" | "d2" => Ok(Problem::D2gc),
        "d1gc" | "d1" => Ok(Problem::D1gc),
        _ => {
            if let Some(k) = lower.strip_prefix('d').and_then(|k| k.parse::<usize>().ok()) {
                if k >= 1 {
                    return Ok(Problem::Dk(k));
                }
            }
            Err(format!("unknown problem `{s}` (bgpc, d1gc, d2gc, or dK)"))
        }
    }
}

fn parse_ordering(s: &str) -> Result<Ordering, String> {
    let lower = s.to_ascii_lowercase();
    if let Some(seed) = lower.strip_prefix("random:") {
        let seed: u64 = seed.parse().map_err(|e| format!("bad random seed: {e}"))?;
        return Ok(Ordering::Random(seed));
    }
    match lower.as_str() {
        "natural" => Ok(Ordering::Natural),
        "random" => Ok(Ordering::Random(0)),
        "largest-first" | "lf" => Ok(Ordering::LargestFirst),
        "smallest-last" | "sl" => Ok(Ordering::SmallestLast),
        "incidence-degree" | "id" => Ok(Ordering::IncidenceDegree),
        _ => Err(format!("unknown ordering `{s}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_dataset_run() {
        let a = ColorArgs::parse(&s(&[
            "--dataset",
            "bone010",
            "--scale",
            "0.004",
            "--schedule",
            "v-n2-b1",
            "--order",
            "sl",
            "--threads",
            "4",
            "--recolor",
        ]))
        .unwrap();
        assert_eq!(
            a.input,
            Input::Dataset {
                dataset: Dataset::Bone010,
                scale: 0.004,
                seed: 20170814
            }
        );
        assert_eq!(a.schedule.name(), "V-N2-B1");
        assert_eq!(a.ordering, Ordering::SmallestLast);
        assert_eq!(a.threads, 4);
        assert!(a.recolor);
    }

    #[test]
    fn parse_mtx_and_problems() {
        let a = ColorArgs::parse(&s(&["--mtx", "m.mtx", "--problem", "d2gc"])).unwrap();
        assert_eq!(a.input, Input::Mtx("m.mtx".into()));
        assert_eq!(a.problem, Problem::D2gc);
        let a = ColorArgs::parse(&s(&["--mtx", "m.mtx", "--problem", "d3"])).unwrap();
        assert_eq!(a.problem, Problem::Dk(3));
        let a = ColorArgs::parse(&s(&["--mtx", "m.mtx", "--problem", "d1"])).unwrap();
        assert_eq!(a.problem, Problem::D1gc);
    }

    #[test]
    fn rejects_bad_input_combos() {
        assert!(ColorArgs::parse(&s(&[])).is_err());
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--dataset", "bone010"])).is_err());
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--problem", "d0"])).is_err());
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--schedule", "zzz"])).is_err());
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--order", "zzz"])).is_err());
        assert!(ColorArgs::parse(&s(&["--nope"])).is_err());
    }

    #[test]
    fn parse_trace_and_metrics() {
        let a = ColorArgs::parse(&s(&["--mtx", "m.mtx", "--trace", "t.json", "--metrics"]))
            .unwrap();
        assert_eq!(a.trace.as_deref(), Some("t.json"));
        assert!(a.metrics);
        let a = ColorArgs::parse(&s(&["--mtx", "m.mtx"])).unwrap();
        assert_eq!(a.trace, None);
        assert!(!a.metrics);
        // --trace requires a value
        assert!(ColorArgs::parse(&s(&["--mtx", "m.mtx", "--trace"])).is_err());
    }

    #[test]
    fn parse_autotune_and_override_tracking() {
        let a = ColorArgs::parse(&s(&["--mtx", "m.mtx", "--autotune"])).unwrap();
        assert!(a.autotune);
        // Nothing explicit: the engine owns every axis.
        let ov = a.engine_overrides();
        assert!(!ov.any());

        let a = ColorArgs::parse(&s(&[
            "--mtx",
            "m.mtx",
            "--autotune",
            "--schedule",
            "v-v",
            "--sched",
            "steal",
            "--index-width",
            "u64",
        ]))
        .unwrap();
        let ov = a.engine_overrides();
        assert_eq!(ov.schedule.as_ref().map(|sc| sc.name()), Some("V-V".into()));
        assert_eq!(ov.sched, Some(par::Sched::Stealing));
        assert_eq!(ov.index_width, Some(IndexWidth::U64));
        assert_eq!(ov.kernel, None, "--kernel not passed");
        assert_eq!(ov.relabel, None, "--relabel not passed");

        // `--index-width auto` asks for the heuristic, not an override.
        let a = ColorArgs::parse(&s(&["--mtx", "m", "--autotune", "--index-width", "auto"]))
            .unwrap();
        assert!(!a.engine_overrides().any());
        // Without --autotune the flag parses but stays off.
        let a = ColorArgs::parse(&s(&["--mtx", "m"])).unwrap();
        assert!(!a.autotune);
    }

    #[test]
    fn random_ordering_with_seed() {
        let a = ColorArgs::parse(&s(&["--mtx", "a", "--order", "random:9"])).unwrap();
        assert_eq!(a.ordering, Ordering::Random(9));
    }

    #[test]
    fn parse_width_relabel_and_sched_axes() {
        let a = ColorArgs::parse(&s(&[
            "--bin",
            "m.bin",
            "--index-width",
            "u64",
            "--relabel",
            "bfs",
            "--sched",
            "steal",
        ]))
        .unwrap();
        assert_eq!(a.input, Input::Bin("m.bin".into()));
        assert_eq!(a.index_width, Some(IndexWidth::U64));
        assert_eq!(a.relabel, LocalityOrder::Bfs);
        assert_eq!(a.schedule.sched, par::Sched::Stealing);

        let a = ColorArgs::parse(&s(&["--mtx", "a", "--index-width", "auto"])).unwrap();
        assert_eq!(a.index_width, None);
        assert_eq!(a.relabel, LocalityOrder::None);
        assert_eq!(a.schedule.sched, par::Sched::Dynamic);

        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--index-width", "u128"])).is_err());
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--relabel", "zzz"])).is_err());
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--sched", "zzz"])).is_err());
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--bin", "b"])).is_err());
    }

    #[test]
    fn parse_kernel_and_pin_axes() {
        let a = ColorArgs::parse(&s(&["--mtx", "a", "--kernel", "scalar", "--pin"])).unwrap();
        assert_eq!(a.schedule.kernel, bgpc::KernelImpl::Scalar);
        assert!(a.pin);
        let a = ColorArgs::parse(&s(&["--mtx", "a", "--kernel", "simd"])).unwrap();
        assert_eq!(a.schedule.kernel, bgpc::KernelImpl::Simd);
        assert!(!a.pin);
        let a = ColorArgs::parse(&s(&["--mtx", "a"])).unwrap();
        assert_eq!(a.schedule.kernel, bgpc::KernelImpl::Auto, "default");
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--kernel", "zzz"])).is_err());
        assert!(ColorArgs::parse(&s(&["--mtx", "a", "--kernel"])).is_err());
    }
}
