//! `bgpc-cli` — color Matrix Market files or synthetic paper instances
//! from the command line.
//!
//! ```text
//! bgpc-cli color --dataset coPapersDBLP --schedule N1-N2 --threads 8
//! bgpc-cli color --mtx matrix.mtx --problem d2gc --order smallest-last
//! bgpc-cli stats --mtx matrix.mtx
//! bgpc-cli generate --dataset bone010 --scale 0.01 --output bone.mtx
//! bgpc-cli update --addr 127.0.0.1:7070 --mtx matrix.mtx --prime --insert 0,9
//! bgpc-cli shard --dataset coPapersDBLP --shards 4 --partition cyclic
//! ```

mod args;
mod run;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "color" => run::cmd_color(rest),
            "stats" => run::cmd_stats(rest),
            "generate" => run::cmd_generate(rest),
            "serve" => run::cmd_serve(rest),
            "update" => run::cmd_update(rest),
            "shard" => run::cmd_shard(rest),
            "--help" | "-h" | "help" => {
                println!("{}", args::COLOR_USAGE);
                println!("\nother commands: stats --mtx FILE | --dataset NAME");
                println!("                generate --dataset NAME [--scale F] [--seed N] --output FILE");
                println!("                serve [--addr HOST:PORT] [--addr-file FILE] [--cache-dir DIR]");
                println!("                update --addr HOST:PORT --mtx FILE [--insert R,C] [--delete R,C]");
                println!("                shard --mtx FILE [--workers A1,A2,... | --shards N] [--partition KIND]");
                0
            }
            other => {
                eprintln!("unknown command `{other}`; try `bgpc-cli help`");
                2
            }
        },
        None => {
            eprintln!("{}", args::COLOR_USAGE);
            2
        }
    };
    std::process::exit(code);
}
