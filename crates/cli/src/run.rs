//! Command implementations.

use std::io::Write;

use bgpc::verify::ColorClassStats;
use graph::{BipartiteGraph, Graph};
use par::Pool;
use sparse::{Csr, Dataset, DegreeStats};

use crate::args::{ColorArgs, Input, Problem, COLOR_USAGE};

fn load(input: &Input) -> Result<Csr, String> {
    match input {
        Input::Mtx(path) => sparse::mm::read_pattern_file(path).map_err(|e| e.to_string()),
        Input::Dataset { dataset, scale, seed } => Ok(dataset.build(*scale, *seed).matrix),
    }
}

/// `bgpc-cli color …`
pub fn cmd_color(flags: &[String]) -> i32 {
    let args = match ColorArgs::parse(flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{COLOR_USAGE}");
            return 2;
        }
    };
    let matrix = match load(&args.input) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "pattern: {} x {}, {} nnz; problem {:?}, schedule {}, {} threads, {} order",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz(),
        args.problem,
        args.schedule.name(),
        args.threads,
        args.ordering.label(),
    );
    let pool = Pool::new(args.threads);

    let (colors, num_colors, bound, total_ms, rounds) = match args.problem {
        Problem::Bgpc => {
            let g = BipartiteGraph::from_matrix(&matrix);
            let order = args.ordering.vertex_order_bgpc(&g);
            let r = bgpc::color_bgpc(&g, &order, &args.schedule, &pool);
            if let Err(e) = bgpc::verify::verify_bgpc(&g, &r.colors) {
                eprintln!("INTERNAL ERROR — invalid coloring: {e}");
                return 1;
            }
            let total_ms = r.total_time.as_secs_f64() * 1e3;
            let rounds = r.rounds();
            let mut colors = r.colors;
            let mut k = r.num_colors;
            if args.recolor {
                k = bgpc::recolor::reduce_colors_bgpc(&g, &mut colors, &pool);
                bgpc::verify::verify_bgpc(&g, &colors).expect("recolor must stay valid");
            }
            (colors, k, g.max_net_size(), total_ms, rounds)
        }
        Problem::D2gc | Problem::D1gc | Problem::Dk(_) => {
            if !matrix.strip_diagonal().is_structurally_symmetric() {
                eprintln!("error: distance-k problems need a symmetric pattern");
                return 1;
            }
            let g = Graph::from_symmetric_matrix(&matrix);
            let order = args.ordering.vertex_order_d2(&g);
            match args.problem {
                Problem::D2gc => {
                    let r = bgpc::d2gc::color_d2gc(&g, &order, &args.schedule, &pool);
                    if let Err(e) = bgpc::verify::verify_d2gc(&g, &r.colors) {
                        eprintln!("INTERNAL ERROR — invalid coloring: {e}");
                        return 1;
                    }
                    let total_ms = r.total_time.as_secs_f64() * 1e3;
                    let rounds = r.rounds();
                    let mut colors = r.colors;
                    let mut k = r.num_colors;
                    if args.recolor {
                        k = bgpc::recolor::reduce_colors_d2gc_seq(&g, &mut colors);
                        bgpc::verify::verify_d2gc(&g, &colors).expect("recolor valid");
                    }
                    (colors, k, g.max_degree() + 1, total_ms, rounds)
                }
                Problem::D1gc => {
                    let t0 = std::time::Instant::now();
                    let (colors, k) = bgpc::d1gc::color_d1gc(
                        &g,
                        &order,
                        &pool,
                        args.schedule.chunk,
                        args.schedule.balance,
                    );
                    bgpc::d1gc::verify_d1gc(&g, &colors).expect("d1 valid");
                    (colors, k, 1, t0.elapsed().as_secs_f64() * 1e3, 0)
                }
                Problem::Dk(k) => {
                    let t0 = std::time::Instant::now();
                    let (colors, used) = bgpc::dkgc::color_dkgc(
                        &g,
                        &order,
                        k,
                        &pool,
                        args.schedule.chunk,
                        args.schedule.balance,
                    );
                    bgpc::dkgc::verify_dkgc(&g, &colors, k).expect("dk valid");
                    (colors, used, 1, t0.elapsed().as_secs_f64() * 1e3, 0)
                }
                Problem::Bgpc => unreachable!(),
            }
        }
    };

    let stats = ColorClassStats::from_colors(&colors);
    println!(
        "colored {} vertices with {} colors (lower bound {}) in {:.2} ms, {} rounds",
        colors.len(),
        num_colors,
        bound,
        total_ms,
        rounds
    );
    println!(
        "classes: {} (min {}, max {}, σ {:.2}, entropy {:.3}, gini {:.3}, {} singletons)",
        stats.num_classes,
        stats.min,
        stats.max,
        stats.std_dev,
        stats.entropy(),
        stats.gini(),
        stats.classes_below(2),
    );

    if let Some(path) = args.output {
        match write_colors(&path, &colors) {
            Ok(()) => println!("colors written to {path}"),
            Err(e) => {
                eprintln!("error writing {path}: {e}");
                return 1;
            }
        }
    }
    0
}

fn write_colors(path: &str, colors: &[i32]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "% vertex color")?;
    for (v, &c) in colors.iter().enumerate() {
        writeln!(f, "{v} {c}")?;
    }
    Ok(())
}

/// `bgpc-cli stats …`
pub fn cmd_stats(flags: &[String]) -> i32 {
    let args = match ColorArgs::parse(flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let matrix = match load(&args.input) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let rows = DegreeStats::rows(&matrix);
    let cols = DegreeStats::cols(&matrix);
    println!("shape: {} x {}, nnz {}", matrix.nrows(), matrix.ncols(), matrix.nnz());
    println!(
        "row degrees: min {} max {} mean {:.2} σ {:.2}",
        rows.min, rows.max, rows.mean, rows.std_dev
    );
    println!(
        "col degrees: min {} max {} mean {:.2} σ {:.2}",
        cols.min, cols.max, cols.mean, cols.std_dev
    );
    let symmetric =
        matrix.nrows() == matrix.ncols() && matrix.strip_diagonal().is_structurally_symmetric();
    println!("structurally symmetric: {symmetric}");
    if symmetric {
        let g = Graph::from_symmetric_matrix(&matrix);
        let natural: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let rcm = graph::rcm_permutation(&g);
        println!(
            "bandwidth: natural {}, after RCM {}",
            graph::bandwidth(&g, &natural),
            graph::bandwidth(&g, &rcm)
        );
    }
    println!("BGPC color lower bound (max net size): {}", rows.max);
    0
}

/// `bgpc-cli generate …`
pub fn cmd_generate(flags: &[String]) -> i32 {
    // reuse ColorArgs parsing for --dataset/--scale/--seed/--output
    let args = match ColorArgs::parse(flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let Input::Dataset { dataset, scale, seed } = args.input else {
        eprintln!("error: generate needs --dataset (not --mtx)");
        return 2;
    };
    let Some(path) = args.output else {
        eprintln!("error: generate needs --output FILE");
        return 2;
    };
    let inst = dataset.build(scale, seed);
    match sparse::mm::write_pattern_file(&path, &inst.matrix) {
        Ok(()) => {
            println!(
                "wrote {} analogue at scale {scale} (seed {seed}) to {path}: {} x {}, {} nnz",
                Dataset::name(&dataset),
                inst.matrix.nrows(),
                inst.matrix.ncols(),
                inst.matrix.nnz()
            );
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Input;

    #[test]
    fn load_dataset_input() {
        let m = load(&Input::Dataset {
            dataset: Dataset::AfShell10,
            scale: 0.002,
            seed: 1,
        })
        .unwrap();
        assert!(m.nnz() > 0);
    }

    #[test]
    fn load_missing_mtx_fails() {
        assert!(load(&Input::Mtx("/definitely/not/here.mtx".into())).is_err());
    }

    #[test]
    fn write_colors_format() {
        let dir = std::env::temp_dir().join("bgpc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.txt");
        write_colors(path.to_str().unwrap(), &[3, 0, 1]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "% vertex color\n0 3\n1 0\n2 1\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
