//! Command implementations.
//!
//! Every command returns a process exit code through one error type so
//! failures are distinguishable by scripts:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 2    | usage error (bad flags) |
//! | 3    | input error (missing/unparsable matrix) |
//! | 4    | graph construction rejected the pattern |
//! | 5    | internal error (invalid coloring produced) |
//! | 6    | output I/O error |
//! | 7    | service error (`serve` daemon failed to start or crashed) |
//!
//! No command path unwraps: library errors surface as [`Failure`] values
//! and the process exits with the matching code.
//!
//! A closed stdout pipe (`bgpc-cli … | head`) is not an error: Rust
//! ignores `SIGPIPE`, so pipe death surfaces as `BrokenPipe` write
//! errors, and every stdout/output write path maps those to a clean
//! silent exit 0 — the Unix convention for a producer whose consumer
//! hung up.

use std::io::Write;

use bgpc::verify::ColorClassStats;
use bgpc::Schedule;
use graph::{BipartiteGraph, Graph, Ordering};
use par::Pool;
use sparse::{Csr, CsrIndex, Dataset, DegreeStats, IndexWidth};

use crate::args::{ColorArgs, Input, Problem, COLOR_USAGE};

/// Exit code for usage errors (bad flags / bad subcommand).
pub const EXIT_USAGE: i32 = 2;
/// Exit code for unreadable or unparsable input.
pub const EXIT_INPUT: i32 = 3;
/// Exit code for patterns the graph layer rejects.
pub const EXIT_GRAPH: i32 = 4;
/// Exit code for internal invariant violations (invalid coloring).
pub const EXIT_INTERNAL: i32 = 5;
/// Exit code for output-side I/O failures.
pub const EXIT_OUTPUT: i32 = 6;
/// Exit code for daemon-mode service failures (`serve`).
pub const EXIT_SERVICE: i32 = 7;

/// A command failure carrying its exit code and message.
struct Failure {
    code: i32,
    msg: String,
}

impl Failure {
    fn new(code: i32, msg: impl Into<String>) -> Self {
        Self {
            code,
            msg: msg.into(),
        }
    }

    /// Maps an output-side I/O error: `BrokenPipe` means the consumer
    /// hung up (`… | head`), which is a clean silent exit, not a failure.
    fn for_output(context: &str, e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            Self { code: 0, msg: String::new() }
        } else {
            Self::new(EXIT_OUTPUT, format!("{context}: {e}"))
        }
    }
}

fn finish(outcome: Result<(), Failure>) -> i32 {
    match outcome {
        Ok(()) => 0,
        // The silent-success path (closed stdout pipe).
        Err(Failure { code: 0, .. }) => 0,
        Err(f) => {
            eprintln!("error: {}", f.msg);
            f.code
        }
    }
}

/// `println!` that survives a closed stdout: on `BrokenPipe` the process
/// exits 0 immediately (consumer hung up), and any other stdout failure
/// exits with [`EXIT_OUTPUT`]. `println!` itself would panic instead.
macro_rules! out {
    ($($arg:tt)*) => {
        crate::run::write_stdout(format_args!($($arg)*))
    };
}

/// Backing writer for [`out!`].
pub(crate) fn write_stdout(args: std::fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    let outcome = stdout.write_fmt(args).and_then(|()| stdout.write_all(b"\n"));
    if let Err(e) = outcome {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error: writing to stdout: {e}");
        std::process::exit(EXIT_OUTPUT);
    }
}

fn load(input: &Input) -> Result<Csr, Failure> {
    match input {
        Input::Mtx(path) => sparse::mm::read_pattern_file(path)
            .map_err(|e| Failure::new(EXIT_INPUT, e.to_string())),
        Input::Bin(path) => sparse::bin_io::read_bin_file(path)
            .map_err(|e| Failure::new(EXIT_INPUT, e.to_string())),
        Input::Dataset { dataset, scale, seed } => Ok(dataset.build(*scale, *seed).matrix),
    }
}

/// Runs the BGPC driver on an already-relabeled pattern at width `I`.
/// `forbidden` forces the engine-chosen forbidden-set representation;
/// `None` keeps the runner's per-instance dispatch.
fn run_bgpc_width<I: CsrIndex>(
    m: Csr<I>,
    schedule: &Schedule,
    ordering: Ordering,
    pool: &Pool,
    forbidden: Option<bgpc::ForbiddenKind>,
    opts: bgpc::RunnerOpts,
) -> Result<bgpc::ColoringResult, Failure> {
    let g = BipartiteGraph::try_from_matrix_owned(m)
        .map_err(|e| Failure::new(EXIT_GRAPH, e.to_string()))?;
    let order = ordering.vertex_order_bgpc(&g);
    Ok(match forbidden {
        Some(bgpc::ForbiddenKind::Stamp) => {
            bgpc::color_bgpc_with_set::<bgpc::StampSet, I>(&g, &order, schedule, pool, opts)
        }
        Some(bgpc::ForbiddenKind::BitStamp) => {
            bgpc::color_bgpc_with_set::<bgpc::BitStampSet, I>(&g, &order, schedule, pool, opts)
        }
        None => bgpc::color_bgpc_with_opts(&g, &order, schedule, pool, opts),
    })
}

/// Runs the D2GC driver on an already-relabeled pattern at width `I`
/// (same `forbidden` contract as [`run_bgpc_width`]).
fn run_d2gc_width<I: CsrIndex>(
    m: &Csr<I>,
    schedule: &Schedule,
    ordering: Ordering,
    pool: &Pool,
    forbidden: Option<bgpc::ForbiddenKind>,
    opts: bgpc::RunnerOpts,
) -> Result<bgpc::ColoringResult, Failure> {
    let g = Graph::try_from_symmetric_matrix(m)
        .map_err(|e| Failure::new(EXIT_GRAPH, e.to_string()))?;
    let order = ordering.vertex_order_d2(&g);
    Ok(match forbidden {
        Some(bgpc::ForbiddenKind::Stamp) => {
            bgpc::d2gc::color_d2gc_with_set::<bgpc::StampSet, I>(&g, &order, schedule, pool, opts)
        }
        Some(bgpc::ForbiddenKind::BitStamp) => {
            bgpc::d2gc::color_d2gc_with_set::<bgpc::BitStampSet, I>(
                &g, &order, schedule, pool, opts,
            )
        }
        None => bgpc::d2gc::color_d2gc_with_opts(&g, &order, schedule, pool, opts),
    })
}

/// Maps a coloring computed on a relabeled instance back to original ids.
fn to_original_ids(colors: Vec<i32>, perm: &Option<Vec<u32>>) -> Vec<i32> {
    match perm {
        Some(p) => sparse::unpermute(&colors, p),
        None => colors,
    }
}

/// `bgpc-cli color …`
pub fn cmd_color(flags: &[String]) -> i32 {
    let args = match ColorArgs::parse(flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{COLOR_USAGE}");
            return EXIT_USAGE;
        }
    };
    finish(color(args))
}

fn color(args: ColorArgs) -> Result<(), Failure> {
    let matrix = load(&args.input)?;

    // Under --autotune the engine proposes the full config from instance
    // features; explicitly passed flags always override its choices. The
    // d1gc/dk variants have no engine table — they keep explicit flags.
    let mut schedule = args.schedule.clone();
    let mut relabel = args.relabel;
    let mut width_request = args.index_width;
    let mut forbidden: Option<bgpc::ForbiddenKind> = None;
    if args.autotune {
        match args.problem {
            Problem::Bgpc | Problem::D2gc => {
                let engine = bgpc::Engine::with_default_table();
                let choice = match args.problem {
                    Problem::Bgpc => {
                        let g = BipartiteGraph::try_from_matrix(&matrix)
                            .map_err(|e| Failure::new(EXIT_GRAPH, e.to_string()))?;
                        engine.select_bgpc(&g)
                    }
                    _ => {
                        let g = Graph::try_from_symmetric_matrix(&matrix)
                            .map_err(|e| Failure::new(EXIT_GRAPH, e.to_string()))?;
                        engine.select_d2gc(&g)
                    }
                };
                let mut cfg = choice.config;
                args.engine_overrides().apply(&mut cfg);
                out!("autotune: {} (matched {})", cfg.describe(), choice.matched);
                schedule = cfg.schedule.clone();
                relabel = cfg.relabel;
                width_request = Some(cfg.index_width);
                forbidden = Some(cfg.forbidden);
            }
            _ => out!("autotune: no table for {:?}; using explicit flags", args.problem),
        }
    }
    let opts = bgpc::RunnerOpts {
        online: args.autotune.then(bgpc::OnlineTuner::default),
        ..Default::default()
    };

    let width = width_request.unwrap_or_else(|| IndexWidth::auto_for(matrix.nnz()));
    out!(
        "pattern: {} x {}, {} nnz; problem {:?}, schedule {}, {} threads, {} order, \
         {} indices, {} relabel, {} chunks",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz(),
        args.problem,
        schedule.name(),
        args.threads,
        args.ordering.label(),
        width.label(),
        relabel.label(),
        schedule.sched,
    );
    let mut pool = if args.pin {
        // Pinning is best-effort: off Linux (or under a restricted
        // affinity mask) the plan reports unpinned and the run proceeds.
        let p = Pool::new_pinned(args.threads);
        out!("pinning: {}", if p.pinned() { "on (core-major)" } else { "requested, unavailable" });
        p
    } else {
        Pool::new(args.threads)
    };
    if args.trace.is_some() || args.metrics {
        // Tracing is opt-in: without these flags no recorder exists and
        // the kernels' counter flushes are skipped entirely.
        pool.set_tracer(std::sync::Arc::new(trace::Recorder::new(pool.threads())));
    }
    let pool = pool;

    let mut iterations: Vec<bgpc::IterationMetrics> = Vec::new();
    let (colors, num_colors, bound, total_ms, rounds) = match args.problem {
        Problem::Bgpc => {
            // Original-id graph: the relabeled run's coloring is mapped
            // back and re-verified against this one.
            let g = BipartiteGraph::try_from_matrix(&matrix)
                .map_err(|e| Failure::new(EXIT_GRAPH, e.to_string()))?;
            let (pm, perm) = relabel.apply_columns(&matrix);
            let r = match width {
                IndexWidth::U32 => {
                    run_bgpc_width(pm, &schedule, args.ordering, &pool, forbidden, opts)?
                }
                IndexWidth::U64 => run_bgpc_width(
                    pm.to_index::<u64>(),
                    &schedule,
                    args.ordering,
                    &pool,
                    forbidden,
                    opts,
                )?,
            };
            report_tuner_actions(&r.tuner_actions);
            report_degradation(&r.degraded);
            let total_ms = r.total_time.as_secs_f64() * 1e3;
            let rounds = r.rounds();
            iterations = r.iterations;
            let mut colors = to_original_ids(r.colors, &perm);
            bgpc::verify::verify_bgpc(&g, &colors)
                .map_err(|e| Failure::new(EXIT_INTERNAL, format!("invalid coloring: {e}")))?;
            let mut k = r.num_colors;
            if args.recolor {
                k = bgpc::recolor::reduce_colors_bgpc(&g, &mut colors, &pool);
                bgpc::verify::verify_bgpc(&g, &colors).map_err(|e| {
                    Failure::new(EXIT_INTERNAL, format!("recolor broke validity: {e}"))
                })?;
            }
            (colors, k, g.max_net_size(), total_ms, rounds)
        }
        Problem::D2gc | Problem::D1gc | Problem::Dk(_) => {
            let g = Graph::try_from_symmetric_matrix(&matrix)
                .map_err(|e| Failure::new(EXIT_GRAPH, e.to_string()))?;
            let order = args.ordering.vertex_order_d2(&g);
            match args.problem {
                Problem::D2gc => {
                    let (pm, perm) = relabel.apply_symmetric(&matrix);
                    let r = match width {
                        IndexWidth::U32 => run_d2gc_width(
                            &pm,
                            &schedule,
                            args.ordering,
                            &pool,
                            forbidden,
                            opts,
                        )?,
                        IndexWidth::U64 => run_d2gc_width(
                            &pm.to_index::<u64>(),
                            &schedule,
                            args.ordering,
                            &pool,
                            forbidden,
                            opts,
                        )?,
                    };
                    report_tuner_actions(&r.tuner_actions);
                    report_degradation(&r.degraded);
                    let total_ms = r.total_time.as_secs_f64() * 1e3;
                    let rounds = r.rounds();
                    iterations = r.iterations;
                    let mut colors = to_original_ids(r.colors, &perm);
                    bgpc::verify::verify_d2gc(&g, &colors).map_err(|e| {
                        Failure::new(EXIT_INTERNAL, format!("invalid coloring: {e}"))
                    })?;
                    let mut k = r.num_colors;
                    if args.recolor {
                        k = bgpc::recolor::reduce_colors_d2gc_seq(&g, &mut colors);
                        bgpc::verify::verify_d2gc(&g, &colors).map_err(|e| {
                            Failure::new(EXIT_INTERNAL, format!("recolor broke validity: {e}"))
                        })?;
                    }
                    (colors, k, g.max_degree() + 1, total_ms, rounds)
                }
                Problem::D1gc => {
                    let t0 = std::time::Instant::now();
                    let (colors, k) = bgpc::d1gc::color_d1gc(
                        &g,
                        &order,
                        &pool,
                        args.schedule.chunk,
                        args.schedule.balance,
                    );
                    bgpc::d1gc::verify_d1gc(&g, &colors).map_err(|e| {
                        Failure::new(EXIT_INTERNAL, format!("invalid coloring: {e}"))
                    })?;
                    (colors, k, 1, t0.elapsed().as_secs_f64() * 1e3, 0)
                }
                Problem::Dk(k) => {
                    let t0 = std::time::Instant::now();
                    let (colors, used) = bgpc::dkgc::color_dkgc(
                        &g,
                        &order,
                        k,
                        &pool,
                        args.schedule.chunk,
                        args.schedule.balance,
                    );
                    bgpc::dkgc::verify_dkgc(&g, &colors, k).map_err(|e| {
                        Failure::new(EXIT_INTERNAL, format!("invalid coloring: {e}"))
                    })?;
                    (colors, used, 1, t0.elapsed().as_secs_f64() * 1e3, 0)
                }
                Problem::Bgpc => unreachable!("outer match sends Bgpc elsewhere"),
            }
        }
    };

    let stats = ColorClassStats::from_colors(&colors);
    out!(
        "colored {} vertices with {} colors (lower bound {}) in {:.2} ms, {} rounds",
        colors.len(),
        num_colors,
        bound,
        total_ms,
        rounds
    );
    out!(
        "classes: {} (min {}, max {}, σ {:.2}, entropy {:.3}, gini {:.3}, {} singletons)",
        stats.num_classes,
        stats.min,
        stats.max,
        stats.std_dev,
        stats.entropy(),
        stats.gini(),
        stats.classes_below(2),
    );

    if args.metrics {
        if let Some(rec) = pool.tracer() {
            if !iterations.is_empty() {
                out!("iter  color    conflict  queue_in  queue_out  color_ms  conflict_ms");
                for m in &iterations {
                    out!(
                        "{:>4}  {:<7}  {:<8}  {:>8}  {:>9}  {:>8.3}  {:>11.3}",
                        m.iter,
                        format!("{:?}", m.color_kind),
                        format!("{:?}", m.conflict_kind),
                        m.queue_in,
                        m.queue_out,
                        m.color_time.as_secs_f64() * 1e3,
                        m.conflict_time.as_secs_f64() * 1e3,
                    );
                }
            }
            print!("{}", trace::imbalance_table(&rec.snapshot_counters()));
        }
    }
    if let Some(path) = &args.trace {
        let rec = pool
            .tracer()
            .expect("--trace installs a recorder before the run");
        std::fs::write(path, trace::chrome_trace_json(rec, "bgpc-cli"))
            .map_err(|e| Failure::for_output(&format!("writing {path}"), e))?;
        out!("trace written to {path}");
    }

    if let Some(path) = args.output {
        write_colors(&path, &colors)
            .map_err(|e| Failure::for_output(&format!("writing {path}"), e))?;
        out!("colors written to {path}");
    }
    Ok(())
}

/// Surfaces the online tuner's between-iteration refinements (only ever
/// non-empty under `--autotune`).
fn report_tuner_actions(actions: &[bgpc::TunerAction]) {
    for a in actions {
        out!("autotune: online {a}");
    }
}

/// A degraded run is still a valid coloring; surface how it got there.
fn report_degradation(degraded: &Option<bgpc::DegradeReason>) {
    if let Some(reason) = degraded {
        eprintln!("warning: parallel run degraded to sequential fallback: {reason}");
    }
}

fn write_colors(path: &str, colors: &[i32]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "% vertex color")?;
    for (v, &c) in colors.iter().enumerate() {
        writeln!(f, "{v} {c}")?;
    }
    f.flush()
}

/// `bgpc-cli stats …`
pub fn cmd_stats(flags: &[String]) -> i32 {
    let args = match ColorArgs::parse(flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    finish(stats(args))
}

fn stats(args: ColorArgs) -> Result<(), Failure> {
    let matrix = load(&args.input)?;
    let rows = DegreeStats::rows(&matrix);
    let cols = DegreeStats::cols(&matrix);
    out!("shape: {} x {}, nnz {}", matrix.nrows(), matrix.ncols(), matrix.nnz());
    out!(
        "row degrees: min {} max {} mean {:.2} σ {:.2}",
        rows.min, rows.max, rows.mean, rows.std_dev
    );
    out!(
        "col degrees: min {} max {} mean {:.2} σ {:.2}",
        cols.min, cols.max, cols.mean, cols.std_dev
    );
    let symmetric =
        matrix.nrows() == matrix.ncols() && matrix.strip_diagonal().is_structurally_symmetric();
    out!("structurally symmetric: {symmetric}");
    if symmetric {
        let g = Graph::try_from_symmetric_matrix(&matrix)
            .map_err(|e| Failure::new(EXIT_GRAPH, e.to_string()))?;
        let natural: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let rcm = graph::rcm_permutation(&g);
        out!(
            "bandwidth: natural {}, after RCM {}",
            graph::bandwidth(&g, &natural),
            graph::bandwidth(&g, &rcm)
        );
    }
    out!("BGPC color lower bound (max net size): {}", rows.max);
    Ok(())
}

/// `bgpc-cli generate …`
pub fn cmd_generate(flags: &[String]) -> i32 {
    // reuse ColorArgs parsing for --dataset/--scale/--seed/--output
    let args = match ColorArgs::parse(flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_USAGE;
        }
    };
    let Input::Dataset { dataset, scale, seed } = args.input else {
        eprintln!("error: generate needs --dataset (not --mtx)");
        return EXIT_USAGE;
    };
    let Some(path) = args.output else {
        eprintln!("error: generate needs --output FILE");
        return EXIT_USAGE;
    };
    let inst = dataset.build(scale, seed);
    finish(
        sparse::mm::write_pattern_file(&path, &inst.matrix)
            .map(|()| {
                out!(
                    "wrote {} analogue at scale {scale} (seed {seed}) to {path}: {} x {}, {} nnz",
                    Dataset::name(&dataset),
                    inst.matrix.nrows(),
                    inst.matrix.ncols(),
                    inst.matrix.nnz()
                );
            })
            .map_err(|e| Failure::for_output(&format!("writing {path}"), e)),
    )
}

/// Usage text for the `serve` command.
pub const SERVE_USAGE: &str = "\
usage: bgpc-cli serve [--addr HOST:PORT] [--addr-file FILE] [--cache-dir DIR]
                      [--threads N] [--queue-capacity N]
                      [--read-timeout-ms N] [--default-deadline-ms N]

Runs the hardened coloring daemon until a client sends the Shutdown verb.
Bind port 0 to let the OS pick; with --addr-file the bound address is
written there (atomically) once the daemon is listening, so scripts can
wait for it. Service failures exit with code 7.";

/// `bgpc-cli serve …` — run the coloring daemon in the foreground.
pub fn cmd_serve(flags: &[String]) -> i32 {
    let mut cfg = serve::ServeConfig {
        cache_dir: std::env::temp_dir().join("bgpc-serve-cache"),
        ..serve::ServeConfig::default()
    };
    let mut addr_file: Option<String> = None;
    let mut i = 0;
    while i < flags.len() {
        let flag = flags[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            flags
                .get(i + 1)
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let outcome: Result<(), String> = (|| {
            match flag {
                "--addr" => cfg.addr = value(i)?.clone(),
                "--addr-file" => addr_file = Some(value(i)?.clone()),
                "--cache-dir" => cfg.cache_dir = value(i)?.into(),
                "--threads" => {
                    cfg.pool_threads =
                        value(i)?.parse().map_err(|e| format!("bad --threads: {e}"))?
                }
                "--queue-capacity" => {
                    cfg.queue_capacity = value(i)?
                        .parse()
                        .map_err(|e| format!("bad --queue-capacity: {e}"))?
                }
                "--read-timeout-ms" => {
                    let ms: u64 =
                        value(i)?.parse().map_err(|e| format!("bad --read-timeout-ms: {e}"))?;
                    cfg.read_timeout = std::time::Duration::from_millis(ms.max(1));
                }
                "--default-deadline-ms" => {
                    cfg.default_deadline_ms = value(i)?
                        .parse()
                        .map_err(|e| format!("bad --default-deadline-ms: {e}"))?
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = outcome {
            eprintln!("error: {e}\n\n{SERVE_USAGE}");
            return EXIT_USAGE;
        }
        i += 2;
    }

    let daemon = match serve::Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: daemon failed to start: {e}");
            return EXIT_SERVICE;
        }
    };
    let addr = daemon.local_addr();
    if let Some(path) = &addr_file {
        if let Err(e) = serve::daemon::write_addr_file(std::path::Path::new(path), addr) {
            eprintln!("error: writing {path}: {e}");
            return EXIT_SERVICE;
        }
    }
    out!("serving on {addr} (shut down with the client's Shutdown verb)");
    daemon.join();
    out!("daemon stopped");
    0
}

/// Usage text for the `update` command.
pub const UPDATE_USAGE: &str = "\
usage: bgpc-cli update --addr HOST:PORT
                       (--mtx FILE | --bin FILE | --dataset NAME [--scale F] [--seed N])
                       [--insert R,C]... [--delete R,C]... [--schedule NAME]
                       [--prime] [--no-cache]

Sends the Update verb to a running daemon: the base graph plus a batch of
edge insertions/deletions. When the base coloring is cached, the daemon
recolors only the dirty vertices seeded from the cached colors and flags
the reply as a cache hit; otherwise the mutated graph is colored from
scratch. --prime submits the base graph first so the reused-entry path is
exercised. Edge endpoints are 0-based (row = net, column = vertex).";

/// Parses one `R,C` edge flag value.
fn parse_edge(flag: &str, v: &str) -> Result<(u32, u32), String> {
    let (r, c) = v
        .split_once(',')
        .ok_or_else(|| format!("bad {flag} `{v}` (expected R,C)"))?;
    let parse = |s: &str| {
        s.trim()
            .parse::<u32>()
            .map_err(|e| format!("bad {flag} `{v}`: {e}"))
    };
    Ok((parse(r)?, parse(c)?))
}

/// `bgpc-cli update …` — mutate a cached coloring on a running daemon.
pub fn cmd_update(flags: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut input: Option<Input> = None;
    let mut scale = 0.002f64;
    let mut seed = 20170814u64;
    let mut insertions: Vec<(u32, u32)> = Vec::new();
    let mut deletions: Vec<(u32, u32)> = Vec::new();
    let mut schedule = String::from("N1-N2");
    let mut prime = false;
    let mut no_cache = false;
    let mut i = 0;
    while i < flags.len() {
        let flag = flags[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            flags
                .get(i + 1)
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let mut consumed = 2;
        let outcome: Result<(), String> = (|| {
            match flag {
                "--addr" => addr = Some(value(i)?.clone()),
                "--mtx" => input = Some(Input::Mtx(value(i)?.clone())),
                "--bin" => input = Some(Input::Bin(value(i)?.clone())),
                "--dataset" => {
                    let name = value(i)?;
                    let dataset = Dataset::from_name(name)
                        .ok_or_else(|| format!("unknown dataset `{name}`"))?;
                    input = Some(Input::Dataset { dataset, scale, seed });
                }
                "--scale" => {
                    scale = value(i)?.parse().map_err(|e| format!("bad --scale: {e}"))?
                }
                "--seed" => seed = value(i)?.parse().map_err(|e| format!("bad --seed: {e}"))?,
                "--insert" => insertions.push(parse_edge("--insert", value(i)?)?),
                "--delete" => deletions.push(parse_edge("--delete", value(i)?)?),
                "--schedule" => schedule = value(i)?.clone(),
                "--prime" => {
                    prime = true;
                    consumed = 1;
                }
                "--no-cache" => {
                    no_cache = true;
                    consumed = 1;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = outcome {
            eprintln!("error: {e}\n\n{UPDATE_USAGE}");
            return EXIT_USAGE;
        }
        i += consumed;
    }
    // --scale/--seed given after --dataset still apply: rebuild the input.
    if let Some(Input::Dataset { dataset, .. }) = input {
        input = Some(Input::Dataset { dataset, scale, seed });
    }
    let Some(addr) = addr else {
        eprintln!("error: update needs --addr HOST:PORT\n\n{UPDATE_USAGE}");
        return EXIT_USAGE;
    };
    let Some(input) = input else {
        eprintln!("error: update needs a base graph (--mtx/--bin/--dataset)\n\n{UPDATE_USAGE}");
        return EXIT_USAGE;
    };
    let base = match load(&input) {
        Ok(m) => m,
        Err(f) => return finish(Err(f)),
    };
    let graph_bytes = serve::client::encode_graph(&base);
    let mut client = serve::ServeClient::new(addr, serve::RetryPolicy::default());
    if prime {
        let req = serve::JobRequest {
            priority: serve::Priority::Normal,
            deadline_ms: 0,
            no_cache: false,
            schedule: schedule.clone(),
            graph_bytes: graph_bytes.clone(),
        };
        match client.submit(&req) {
            Ok(r) => out!(
                "primed base graph: {} colors (cache_hit {})",
                r.num_colors,
                r.cache_hit
            ),
            Err(e) => {
                eprintln!("error: priming submit failed: {e}");
                return EXIT_SERVICE;
            }
        }
    }
    let req = serve::UpdateRequest {
        priority: serve::Priority::Normal,
        deadline_ms: 0,
        no_cache,
        schedule,
        insertions,
        deletions,
        graph_bytes,
    };
    match client.update(&req) {
        Ok(r) => {
            out!(
                "update: {} colors, served from reused cache entry: {}{}",
                r.num_colors,
                r.cache_hit,
                r.degraded
                    .as_ref()
                    .map_or(String::new(), |d| format!(" (degraded: {d})"))
            );
            0
        }
        Err(e) => {
            eprintln!("error: update failed: {e}");
            EXIT_SERVICE
        }
    }
}

/// Usage text for the `shard` command.
pub const SHARD_USAGE: &str = "\
usage: bgpc-cli shard (--mtx FILE | --bin FILE | --dataset NAME [--scale F] [--seed N])
                      [--workers A1,A2,... | --shards N]
                      [--partition block|cyclic|random] [--part-seed N]
                      [--max-supersteps N]

Colors the instance across shard workers over the serve protocol: each
shard is a `bgpc-cli serve` daemon, supersteps and boundary-color
exchanges travel over TCP, and the coordinator assembles and verifies
the global coloring. --workers connects to already-running daemons;
--shards N (default 2) spawns N local worker processes and tears them
down afterwards. Unreachable workers are dropped and a worker dying
mid-run degrades to a valid in-process fallback — degraded results
still exit 0 and carry a greppable `degraded:` line.";

/// Spawned `serve` worker children, killed on drop.
struct SpawnedWorkers {
    children: Vec<std::process::Child>,
}

impl Drop for SpawnedWorkers {
    fn drop(&mut self) {
        for c in self.children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// Spawns `n` local `serve` worker processes (this same binary) and
/// waits for each to publish its bound address through `--addr-file`.
fn spawn_workers(n: usize) -> Result<(SpawnedWorkers, Vec<String>), Failure> {
    let exe = std::env::current_exe()
        .map_err(|e| Failure::new(EXIT_SERVICE, format!("resolving own binary: {e}")))?;
    let dir = std::env::temp_dir().join(format!("bgpc-shard-{}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .map_err(|e| Failure::new(EXIT_SERVICE, format!("creating {}: {e}", dir.display())))?;
    let mut guard = SpawnedWorkers { children: Vec::new() };
    let mut addr_files = Vec::new();
    for i in 0..n {
        let addr_file = dir.join(format!("addr{i}"));
        let _ = std::fs::remove_file(&addr_file);
        let child = std::process::Command::new(&exe)
            .args(["serve", "--addr", "127.0.0.1:0", "--threads", "1"])
            .arg("--addr-file")
            .arg(&addr_file)
            .arg("--cache-dir")
            .arg(dir.join(format!("cache{i}")))
            .stdout(std::process::Stdio::null())
            .spawn()
            .map_err(|e| Failure::new(EXIT_SERVICE, format!("spawning worker {i}: {e}")))?;
        guard.children.push(child);
        addr_files.push(addr_file);
    }
    let mut addrs = Vec::new();
    for (i, f) in addr_files.iter().enumerate() {
        let mut tries = 0u32;
        // write_addr_file is atomic (rename), so a non-empty read is a
        // complete address.
        let addr = loop {
            match std::fs::read_to_string(f) {
                Ok(s) if !s.trim().is_empty() => break s.trim().to_string(),
                _ => {
                    tries += 1;
                    if tries > 200 {
                        return Err(Failure::new(
                            EXIT_SERVICE,
                            format!("worker {i} never published an address in {}", f.display()),
                        ));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        };
        addrs.push(addr);
    }
    Ok((guard, addrs))
}

/// Builds the requested partitioner over `n` vertices and `p` ranks.
fn make_partition(kind: &str, n: usize, p: usize, seed: u64) -> Result<dist::Partition, String> {
    match kind {
        "block" => Ok(dist::Partition::block(n, p)),
        "cyclic" => Ok(dist::Partition::cyclic(n, p)),
        "random" => Ok(dist::Partition::random(n, p, seed)),
        other => Err(format!("unknown --partition `{other}` (block|cyclic|random)")),
    }
}

/// `bgpc-cli shard …` — color across shard worker processes.
pub fn cmd_shard(flags: &[String]) -> i32 {
    let mut input: Option<Input> = None;
    let mut scale = 0.002f64;
    let mut seed = 20170814u64;
    let mut workers: Option<Vec<String>> = None;
    let mut shards = 2usize;
    let mut partition_kind = String::from("block");
    let mut part_seed = 7u64;
    let mut max_supersteps: Option<usize> = None;
    let mut i = 0;
    while i < flags.len() {
        let flag = flags[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            flags
                .get(i + 1)
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let outcome: Result<(), String> = (|| {
            match flag {
                "--mtx" => input = Some(Input::Mtx(value(i)?.clone())),
                "--bin" => input = Some(Input::Bin(value(i)?.clone())),
                "--dataset" => {
                    let name = value(i)?;
                    let dataset = Dataset::from_name(name)
                        .ok_or_else(|| format!("unknown dataset `{name}`"))?;
                    input = Some(Input::Dataset { dataset, scale, seed });
                }
                "--scale" => {
                    scale = value(i)?.parse().map_err(|e| format!("bad --scale: {e}"))?
                }
                "--seed" => seed = value(i)?.parse().map_err(|e| format!("bad --seed: {e}"))?,
                "--workers" => {
                    let list: Vec<String> = value(i)?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if list.is_empty() {
                        return Err("--workers needs at least one address".into());
                    }
                    workers = Some(list);
                }
                "--shards" => {
                    shards = value(i)?.parse().map_err(|e| format!("bad --shards: {e}"))?;
                    if shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                }
                "--partition" => partition_kind = value(i)?.clone(),
                "--part-seed" => {
                    part_seed = value(i)?.parse().map_err(|e| format!("bad --part-seed: {e}"))?
                }
                "--max-supersteps" => {
                    max_supersteps =
                        Some(value(i)?.parse().map_err(|e| format!("bad --max-supersteps: {e}"))?)
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(e) = outcome {
            eprintln!("error: {e}\n\n{SHARD_USAGE}");
            return EXIT_USAGE;
        }
        i += 2;
    }
    // --scale/--seed given after --dataset still apply: rebuild the input.
    if let Some(Input::Dataset { dataset, .. }) = input {
        input = Some(Input::Dataset { dataset, scale, seed });
    }
    let Some(input) = input else {
        eprintln!("error: shard needs an instance (--mtx/--bin/--dataset)\n\n{SHARD_USAGE}");
        return EXIT_USAGE;
    };
    finish(run_shard(
        &input,
        workers,
        shards,
        &partition_kind,
        part_seed,
        max_supersteps,
    ))
}

fn run_shard(
    input: &Input,
    workers: Option<Vec<String>>,
    shards: usize,
    partition_kind: &str,
    part_seed: u64,
    max_supersteps: Option<usize>,
) -> Result<(), Failure> {
    let matrix = load(input)?;
    let g = BipartiteGraph::try_from_matrix(&matrix)
        .map_err(|e| Failure::new(EXIT_GRAPH, e.to_string()))?;
    let n = g.n_vertices();

    // Either connect to the given fleet or spawn a local one. The guard
    // keeps spawned children alive until the run finishes.
    let mut notes: Vec<String> = Vec::new();
    let (_guard, candidates) = match workers {
        Some(addrs) => (None, addrs),
        None => {
            let (guard, addrs) = spawn_workers(shards)?;
            (Some(guard), addrs)
        }
    };
    let requested = candidates.len();
    let mut live = Vec::new();
    for a in &candidates {
        match std::net::TcpStream::connect(a) {
            Ok(_) => live.push(a.clone()),
            Err(e) => notes.push(format!("worker {a} unreachable ({e})")),
        }
    }

    let (outcome, used) = if live.is_empty() {
        notes.push("no reachable workers; recovered with a single-node run".into());
        let partition = make_partition(partition_kind, n, requested.max(1), part_seed)
            .map_err(|e| Failure::new(EXIT_USAGE, e))?;
        let mut runner = dist::DistRunner::new(&g, partition);
        if let Some(cap) = max_supersteps {
            runner = runner.with_max_supersteps(cap);
        }
        let r = runner.run();
        let outcome = dist::ShardOutcome {
            colors: r.colors,
            num_colors: r.num_colors,
            supersteps: r.supersteps,
            n_shards: requested.max(1),
            degraded: None,
        };
        (outcome, 0)
    } else {
        let partition = make_partition(partition_kind, n, live.len(), part_seed)
            .map_err(|e| Failure::new(EXIT_USAGE, e))?;
        let mut coord = dist::Coordinator::connect(&live)
            .map_err(|e| Failure::new(EXIT_SERVICE, format!("connecting workers: {e}")))?;
        if let Some(cap) = max_supersteps {
            coord = coord.with_max_supersteps(cap);
        }
        let outcome = coord
            .color(&matrix, &partition)
            .map_err(|e| Failure::new(EXIT_GRAPH, e))?;
        (outcome, live.len())
    };

    // The coordinator already verified, but the CLI re-checks before
    // reporting: an invalid assembled coloring is an internal error.
    bgpc::verify::verify_bgpc(&g, &outcome.colors)
        .map_err(|e| Failure::new(EXIT_INTERNAL, format!("assembled coloring invalid: {e}")))?;
    if let Some(reason) = &outcome.degraded {
        notes.push(reason.clone());
    }

    out!(
        "shard: workers={used}/{requested} partition={partition_kind} rounds={} \
         messages={} colors={} verified=true",
        outcome.rounds(),
        outcome.total_messages(),
        outcome.num_colors
    );
    for (idx, s) in outcome.supersteps.iter().enumerate() {
        out!(
            "shard: round {} colored={} conflicts={} messages={}",
            idx + 1,
            s.colored,
            s.conflicts,
            s.messages
        );
    }
    if !notes.is_empty() {
        out!("degraded: {}", notes.join("; "));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Input;

    #[test]
    fn load_dataset_input() {
        let m = load(&Input::Dataset {
            dataset: Dataset::AfShell10,
            scale: 0.002,
            seed: 1,
        })
        .unwrap_or_else(|f| panic!("{}", f.msg));
        assert!(m.nnz() > 0);
    }

    #[test]
    fn load_missing_mtx_maps_to_input_code() {
        let Err(f) = load(&Input::Mtx("/definitely/not/here.mtx".into())) else {
            panic!("must fail");
        };
        assert_eq!(f.code, EXIT_INPUT);
    }

    #[test]
    fn write_colors_format() {
        let dir = std::env::temp_dir().join("bgpc-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.txt");
        write_colors(path.to_str().unwrap(), &[3, 0, 1]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "% vertex color\n0 3\n1 0\n2 1\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn s(flags: &[&str]) -> Vec<String> {
        flags.iter().map(|f| f.to_string()).collect()
    }

    #[test]
    fn color_to_unwritable_directory_exits_with_output_code() {
        let code = cmd_color(&s(&[
            "--dataset",
            "af_shell10",
            "--scale",
            "0.002",
            "--output",
            "/definitely/not/a/dir/colors.txt",
        ]));
        assert_eq!(code, EXIT_OUTPUT);
    }

    #[test]
    fn asymmetric_pattern_for_d2gc_exits_with_graph_code() {
        // generate a rectangular (hence non-symmetric) pattern file
        let dir = std::env::temp_dir().join("bgpc-cli-asym");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rect.mtx");
        let m = sparse::gen::bipartite_uniform(4, 7, 12, 3);
        sparse::mm::write_pattern_file(path.to_str().unwrap(), &m).unwrap();
        let code = cmd_color(&s(&[
            "--mtx",
            path.to_str().unwrap(),
            "--problem",
            "d2gc",
        ]));
        assert_eq!(code, EXIT_GRAPH);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_input_exits_with_input_code() {
        let code = cmd_color(&s(&["--mtx", "/definitely/not/here.mtx"]));
        assert_eq!(code, EXIT_INPUT);
    }

    #[test]
    fn bad_flags_exit_with_usage_code() {
        let code = cmd_color(&s(&["--no-such-flag"]));
        assert_eq!(code, EXIT_USAGE);
    }

    #[test]
    fn successful_color_run_exits_zero() {
        let code = cmd_color(&s(&["--dataset", "af_shell10", "--scale", "0.002"]));
        assert_eq!(code, 0);
    }

    #[test]
    fn axis_combinations_color_and_verify_in_original_ids() {
        // Every relabeling × width × scheduler combo still exits zero: the
        // run colors the relabeled instance and re-verifies the unpermuted
        // coloring against the original graph.
        for relabel in ["none", "degree", "bfs"] {
            for width in ["u32", "u64"] {
                for sched in ["dynamic", "steal"] {
                    let code = cmd_color(&s(&[
                        "--dataset",
                        "af_shell10",
                        "--scale",
                        "0.002",
                        "--relabel",
                        relabel,
                        "--index-width",
                        width,
                        "--sched",
                        sched,
                    ]));
                    assert_eq!(code, 0, "{relabel}/{width}/{sched}");
                }
            }
        }
    }

    #[test]
    fn kernel_and_pin_axes_color_and_verify() {
        // Each kernel request (and pinning, which degrades gracefully when
        // affinity is unavailable) must still produce a verified coloring.
        for kernel in ["scalar", "simd", "auto"] {
            for problem in ["bgpc", "d2gc"] {
                let mut flags = vec![
                    "--dataset",
                    "af_shell10",
                    "--scale",
                    "0.002",
                    "--problem",
                    problem,
                    "--kernel",
                    kernel,
                    "--sched",
                    "steal",
                ];
                if kernel == "auto" {
                    flags.push("--pin");
                }
                let code = cmd_color(&s(&flags));
                assert_eq!(code, 0, "{problem}/{kernel}");
            }
        }
    }

    #[test]
    fn autotune_runs_color_and_verify_both_problems() {
        for problem in ["bgpc", "d2gc"] {
            let code = cmd_color(&s(&[
                "--dataset",
                "af_shell10",
                "--scale",
                "0.002",
                "--problem",
                problem,
                "--autotune",
            ]));
            assert_eq!(code, 0, "{problem}");
        }
        // Explicit flags still override under --autotune.
        let code = cmd_color(&s(&[
            "--dataset",
            "af_shell10",
            "--scale",
            "0.002",
            "--autotune",
            "--schedule",
            "v-v",
            "--sched",
            "steal",
        ]));
        assert_eq!(code, 0);
        // Engine has no table for d1gc: flags apply, run still succeeds.
        let code = cmd_color(&s(&[
            "--dataset",
            "af_shell10",
            "--scale",
            "0.002",
            "--problem",
            "d1gc",
            "--autotune",
        ]));
        assert_eq!(code, 0);
    }

    #[test]
    fn d2gc_relabeled_run_exits_zero() {
        let dir = std::env::temp_dir().join("bgpc-cli-d2-relabel");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sym.mtx");
        let m = sparse::gen::erdos_renyi(40, 90, 5);
        sparse::mm::write_pattern_file(path.to_str().unwrap(), &m).unwrap();
        let code = cmd_color(&s(&[
            "--mtx",
            path.to_str().unwrap(),
            "--problem",
            "d2gc",
            "--relabel",
            "bfs",
            "--sched",
            "steal",
        ]));
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_flag_writes_parseable_chrome_trace() {
        let dir = std::env::temp_dir().join("bgpc-cli-trace-ok");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.trace.json");
        let code = cmd_color(&s(&[
            "--dataset",
            "af_shell10",
            "--scale",
            "0.002",
            "--threads",
            "3",
            "--metrics",
            "--trace",
            path.to_str().unwrap(),
        ]));
        assert_eq!(code, 0);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = trace::reader::ChromeTrace::parse(&text)
            .unwrap_or_else(|e| panic!("emitted trace must satisfy the schema: {e}"));
        // Every team member accumulated busy time through its region guard.
        assert_eq!(parsed.busy_per_thread().len(), 3);
        assert!(parsed.spans().count() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_to_unwritable_directory_exits_with_output_code() {
        let code = cmd_color(&s(&[
            "--dataset",
            "af_shell10",
            "--scale",
            "0.002",
            "--trace",
            "/definitely/not/a/dir/run.trace.json",
        ]));
        assert_eq!(code, EXIT_OUTPUT);
    }

    #[test]
    fn bin_input_roundtrips_through_cli() {
        let dir = std::env::temp_dir().join("bgpc-cli-bin-ok");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.bin");
        let m = sparse::gen::bipartite_uniform(20, 30, 120, 3);
        sparse::bin_io::write_bin_file(&path, &m).unwrap();
        let code = cmd_color(&s(&["--bin", path.to_str().unwrap()]));
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bin_with_corrupt_payload_exits_with_input_code() {
        // Clobber a column index inside the checksummed region: the
        // hardened reader must reject the file with the structured
        // checksum-mismatch error, mapped to the input code.
        let dir = std::env::temp_dir().join("bgpc-cli-bin-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        let m = sparse::gen::bipartite_uniform(10, 10, 40, 1);
        let mut buf = Vec::new();
        sparse::bin_io::write_bin(&mut buf, &m).unwrap();
        let len = buf.len();
        // The last 8 bytes are the trailer; corrupt the last col index.
        buf[len - 12..len - 8].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &buf).unwrap();

        let Err(f) = load(&Input::Bin(path.to_str().unwrap().into())) else {
            panic!("corrupt bin must fail to load");
        };
        assert_eq!(f.code, EXIT_INPUT);
        assert!(
            f.msg.contains("checksum mismatch"),
            "error must name the structured corruption: {}",
            f.msg
        );
        let code = cmd_color(&s(&["--bin", path.to_str().unwrap()]));
        assert_eq!(code, EXIT_INPUT);
        std::fs::remove_dir_all(&dir).ok();
    }
}
