//! Process-level CLI behavior that can't be tested in-process: broken
//! stdout pipes (the `bgpc-cli … | head` scenario) and the `serve`
//! daemon mode with its exit-code taxonomy (7 = service error).

use std::io::Read;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bgpc-cli"))
}

#[test]
fn closed_stdout_pipe_is_a_clean_exit_not_a_panic() {
    // Generate a matrix large enough to overflow the 64 KiB pipe buffer,
    // writing to /dev/stdout while the reader closes after one byte: the
    // writer hits EPIPE mid-stream and must exit 0 silently.
    let mut child = cli()
        .args([
            "generate",
            "--dataset",
            "af_shell10",
            "--scale",
            "0.05",
            "--output",
            "/dev/stdout",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn bgpc-cli");
    let mut stdout = child.stdout.take().expect("piped stdout");
    let mut first = [0u8; 1];
    stdout.read_exact(&mut first).expect("the stream starts");
    drop(stdout); // reader hangs up mid-stream
    let status = child.wait().expect("child exits");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        status.success(),
        "broken pipe must exit 0, got {status:?} with stderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "broken pipe must not panic: {stderr}"
    );
}

#[test]
fn closed_stdout_pipe_during_color_run_is_clean() {
    let mut child = cli()
        .args(["color", "--dataset", "af_shell10", "--scale", "0.002"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn bgpc-cli");
    // Close stdout before the run prints its report lines.
    drop(child.stdout.take());
    let status = child.wait().expect("child exits");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("piped stderr")
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(status.success(), "got {status:?} with stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "must not panic: {stderr}");
}

#[test]
fn unbindable_address_exits_with_service_code() {
    let status = cli()
        .args(["serve", "--addr", "203.0.113.1:1"]) // TEST-NET, not routable/bindable
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn bgpc-cli");
    assert_eq!(status.code(), Some(7), "service failures use exit code 7");
}

#[test]
fn serve_daemon_round_trips_jobs_and_stops_on_shutdown_verb() {
    let dir = std::env::temp_dir().join(format!("cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let addr_file = dir.join("addr");
    let mut child = cli()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--cache-dir",
            dir.join("cache").to_str().unwrap(),
            "--threads",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");

    // Wait for the atomically written address file.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its address");
        std::thread::sleep(Duration::from_millis(20));
    };

    let mut client = serve::ServeClient::new(addr, serve::RetryPolicy::default());
    client.ping().expect("daemon answers pings");
    let m = sparse::gen::bipartite_uniform(100, 80, 600, 5);
    let req = serve::JobRequest {
        priority: serve::Priority::Normal,
        deadline_ms: 0,
        no_cache: false,
        schedule: String::new(),
        graph_bytes: serve::client::encode_graph(&m),
    };
    let outcome = client.submit(&req).expect("job completes");
    let g = graph::BipartiteGraph::try_from_matrix(&m).unwrap();
    bgpc::verify::verify_bgpc(&g, &outcome.colors).expect("coloring verifies");

    client.shutdown().expect("shutdown verb accepted");
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(s) = child.try_wait().expect("try_wait") {
            break s;
        }
        assert!(Instant::now() < deadline, "daemon must exit after Shutdown");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "clean daemon shutdown exits 0");
    let _ = std::fs::remove_dir_all(&dir);
}
