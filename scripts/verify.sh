#!/usr/bin/env bash
# Tier-1 verification: hermetic build + tests + lints, fully offline.
# The workspace has zero registry dependencies (see README "Hermetic
# offline build"), so --offline must always succeed.
#
# Each step reports its wall time. The bench-smoke step is additionally
# gated against scripts/verify_baseline.txt: if the smoke run takes more
# than 5x the recorded baseline, verification fails — a coarse tripwire
# for accidental serialization or pathological regressions in the hot
# kernels. Delete the baseline file (or re-record on a new machine) to
# reset it.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_FILE="scripts/verify_baseline.txt"
STEP_START=0

step_begin() {
  echo "== $1"
  STEP_START=$(date +%s)
}

step_end() {
  local elapsed=$(( $(date +%s) - STEP_START ))
  echo "-- step '$1' took ${elapsed}s"
  LAST_STEP_SECS=$elapsed
}

step_begin "cargo build --workspace --release --offline"
cargo build --workspace --release --offline
step_end "build"

step_begin "cargo test --workspace -q --offline"
cargo test --workspace -q --offline
step_end "test"

step_begin "cargo clippy --workspace --all-targets --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings
step_end "clippy"

step_begin "cargo doc --workspace --no-deps --offline (RUSTDOCFLAGS=-D warnings)"
# Rustdoc is tier-1: broken intra-doc links or missing docs on public
# items fail verification, keeping the documented observability surface
# in sync with the code.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline
step_end "doc"

step_begin "check smoke: interleaving checker + differential oracle"
# Seeded and deterministic: the same CHECK_SEED replays the same virtual
# thread interleavings and the same randomized oracle instances. On
# failure check_smoke prints the replay seed (and, for oracle cases, a
# --replay-case sub-seed) before exiting nonzero.
CHECK_SEED="${CHECK_SEED:-20260806}"
./target/release/check_smoke --seed "$CHECK_SEED" --cases 200
step_end "check-smoke"

step_begin "bench smoke: bench_coloring --smoke (verifies every coloring)"
# The smoke run exits nonzero if any schedule produces an invalid
# coloring; its JSON goes under target/ so it never clobbers the
# checked-in BENCH_coloring.json from scripts/bench.sh. --trace routes
# one instrumented run through the whole observability pipeline.
./target/release/bench_coloring --smoke --out target/BENCH_smoke.json \
  --trace target/BENCH_smoke.trace.json
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool target/BENCH_smoke.json >/dev/null
  echo "bench smoke JSON parses"
else
  # Fallback: the emitted report always ends with a closing brace.
  grep -q '}' target/BENCH_smoke.json
  echo "bench smoke JSON present (python3 unavailable; shallow check)"
fi
# Schema-check the emitted chrome trace and print the smoke run's
# per-thread busy/imbalance table.
./target/release/trace_schema_check target/BENCH_smoke.trace.json
step_end "bench-smoke"
SMOKE_SECS=$LAST_STEP_SECS

# Regression gate: fail when the smoke step runs >5x slower than the
# recorded baseline. The threshold is deliberately loose — it catches
# "the scheduler livelocked" or "a kernel went quadratic", not noise.
if [[ -f "$BASELINE_FILE" ]]; then
  BASELINE_SECS=$(cat "$BASELINE_FILE")
  if [[ "$BASELINE_SECS" =~ ^[0-9]+$ ]] && (( BASELINE_SECS > 0 )); then
    LIMIT=$(( BASELINE_SECS * 5 ))
    if (( SMOKE_SECS > LIMIT )); then
      echo "verify: FAIL — bench smoke took ${SMOKE_SECS}s," \
           "more than 5x the recorded baseline of ${BASELINE_SECS}s" >&2
      echo "(re-record with: echo ${SMOKE_SECS} > ${BASELINE_FILE})" >&2
      exit 1
    fi
    echo "-- bench smoke within budget (${SMOKE_SECS}s <= 5x baseline ${BASELINE_SECS}s)"
  else
    echo "-- ignoring malformed baseline '${BASELINE_SECS}' in ${BASELINE_FILE}" >&2
  fi
else
  # First run on this checkout: record the baseline (floor of 1s so the
  # 5x budget is never zero).
  RECORD=$(( SMOKE_SECS > 0 ? SMOKE_SECS : 1 ))
  echo "$RECORD" > "$BASELINE_FILE"
  echo "-- recorded bench smoke baseline: ${RECORD}s -> ${BASELINE_FILE}"
fi

echo "verify: OK"
