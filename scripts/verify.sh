#!/usr/bin/env bash
# Tier-1 verification: hermetic build + tests + lints, fully offline.
# The workspace has zero registry dependencies (see README "Hermetic
# offline build"), so --offline must always succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "== cargo clippy --workspace --all-targets --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "verify: OK"
