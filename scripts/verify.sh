#!/usr/bin/env bash
# Tier-1 verification: hermetic build + tests + lints, fully offline.
# The workspace has zero registry dependencies (see README "Hermetic
# offline build"), so --offline must always succeed.
#
# Each step reports its wall time. The bench-smoke step is additionally
# gated against scripts/verify_baseline.txt: if the smoke run takes more
# than 5x the recorded baseline, verification fails — a coarse tripwire
# for accidental serialization or pathological regressions in the hot
# kernels. Delete the baseline file (or re-record on a new machine) to
# reset it.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_FILE="scripts/verify_baseline.txt"
STEP_START=0

step_begin() {
  echo "== $1"
  STEP_START=$(date +%s)
}

step_end() {
  local elapsed=$(( $(date +%s) - STEP_START ))
  echo "-- step '$1' took ${elapsed}s"
  LAST_STEP_SECS=$elapsed
}

step_begin "cargo build --workspace --release --offline"
cargo build --workspace --release --offline
step_end "build"

step_begin "cargo test --workspace -q --offline"
cargo test --workspace -q --offline
step_end "test"

step_begin "cargo clippy --workspace --all-targets --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings
step_end "clippy"

step_begin "cargo doc --workspace --no-deps --offline (RUSTDOCFLAGS=-D warnings)"
# Rustdoc is tier-1: broken intra-doc links or missing docs on public
# items fail verification, keeping the documented observability surface
# in sync with the code.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline
step_end "doc"

step_begin "check smoke: interleaving checker + differential oracle"
# Seeded and deterministic: the same CHECK_SEED replays the same virtual
# thread interleavings and the same randomized oracle instances. On
# failure check_smoke prints the replay seed (and, for oracle cases, a
# --replay-case sub-seed) before exiting nonzero.
CHECK_SEED="${CHECK_SEED:-20260806}"
./target/release/check_smoke --seed "$CHECK_SEED" --cases 200
step_end "check-smoke"

step_begin "check smoke: forced --kernel scalar / --kernel simd sweeps"
# The same seeded oracle instances with the forbidden-set kernel axis
# pinned to each side of the scalar ≡ simd contract: any divergence
# between the spec loops and the vectorized kernels fails tier-1 here
# even on hosts where the random axis draw would rarely pick one side.
./target/release/check_smoke --seed "$CHECK_SEED" --cases 60 --kernel scalar
./target/release/check_smoke --seed "$CHECK_SEED" --cases 60 --kernel simd
step_end "check-smoke-kernels"

step_begin "check smoke: --delta incremental-recoloring differential oracle"
# Randomized mutation batches against randomized base instances, for both
# problems: apply_delta exactness (inserted edges present, deleted absent,
# everything else untouched), dirty-set recoloring verified on the mutated
# graph with no base-vertex degradation, the documented quality bound for
# unbalanced schedules, empty-delta identity, and the one-thread battery
# (determinism, forbidden-set/width/kernel equivalence).
./target/release/check_smoke --seed "$CHECK_SEED" --cases 120 --delta
step_end "check-smoke-delta"

step_begin "check smoke: --dist sharded-coloring differential oracle"
# Shard-count (1/2/4/8) × partitioner (block/cyclic/random) sweeps over
# randomized instances, colored through the multi-process coordinator
# against real loopback worker daemons: every run must be non-degraded,
# verify in original vertex ids, stay within the documented quality
# bound, and match the in-process single-node baseline's accounting.
./target/release/check_smoke --seed "$CHECK_SEED" --cases 60 --dist
step_end "check-smoke-dist"

step_begin "check smoke: --autotune engine-selection sweep"
# The same oracle standard applied to configs the auto-tuning engine
# picks: selection must be deterministic, the chosen schedule's name
# must round-trip, and the config (relabel + index width + online
# tuner) must color validly at 1-4 threads with no degrade.
./target/release/check_smoke --seed "$CHECK_SEED" --cases 60 --autotune
step_end "check-smoke-autotune"

step_begin "CLI autotune smoke: engine banner + explicit-flag override"
# `--autotune` must announce the engine's resolved config, and an
# explicitly passed flag must beat the engine on that axis (the
# override contract) — both grepped from the CLI's own output.
AUTOTUNE_OUT=$(./target/release/bgpc-cli color --dataset coPapersDBLP --scale 0.002 \
  --threads 2 --autotune)
echo "$AUTOTUNE_OUT" | grep -q "autotune: schedule=" \
  || { echo "verify: FAIL — --autotune printed no engine config banner" >&2; exit 1; }
OVERRIDE_OUT=$(./target/release/bgpc-cli color --dataset coPapersDBLP --scale 0.002 \
  --threads 2 --autotune --schedule v-v)
echo "$OVERRIDE_OUT" | grep -q "autotune: schedule=V-V " \
  || { echo "verify: FAIL — explicit --schedule v-v did not override the engine" >&2; exit 1; }
echo "-- autotune banner present; explicit --schedule overrides the engine"
step_end "cli-autotune"

step_begin "bench smoke: bench_coloring --smoke (verifies every coloring)"
# The smoke run exits nonzero if any schedule produces an invalid
# coloring; its JSON goes under target/ so it never clobbers the
# checked-in BENCH_coloring.json from scripts/bench.sh. --trace routes
# one instrumented run through the whole observability pipeline.
./target/release/bench_coloring --smoke --out target/BENCH_smoke.json \
  --trace target/BENCH_smoke.trace.json
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool target/BENCH_smoke.json >/dev/null
  echo "bench smoke JSON parses"
else
  # Fallback: the emitted report always ends with a closing brace.
  grep -q '}' target/BENCH_smoke.json
  echo "bench smoke JSON present (python3 unavailable; shallow check)"
fi
# Schema-check the emitted chrome trace and print the smoke run's
# per-thread busy/imbalance table.
./target/release/trace_schema_check target/BENCH_smoke.trace.json
step_end "bench-smoke"
SMOKE_SECS=$LAST_STEP_SECS

# Regression gate: fail when the smoke step runs >5x slower than the
# recorded baseline. The threshold is deliberately loose — it catches
# "the scheduler livelocked" or "a kernel went quadratic", not noise.
if [[ -f "$BASELINE_FILE" ]]; then
  BASELINE_SECS=$(cat "$BASELINE_FILE")
  if [[ "$BASELINE_SECS" =~ ^[0-9]+$ ]] && (( BASELINE_SECS > 0 )); then
    LIMIT=$(( BASELINE_SECS * 5 ))
    if (( SMOKE_SECS > LIMIT )); then
      echo "verify: FAIL — bench smoke took ${SMOKE_SECS}s," \
           "more than 5x the recorded baseline of ${BASELINE_SECS}s" >&2
      echo "(re-record with: echo ${SMOKE_SECS} > ${BASELINE_FILE})" >&2
      exit 1
    fi
    echo "-- bench smoke within budget (${SMOKE_SECS}s <= 5x baseline ${BASELINE_SECS}s)"
  else
    echo "-- ignoring malformed baseline '${BASELINE_SECS}' in ${BASELINE_FILE}" >&2
  fi
else
  # First run on this checkout: record the baseline (floor of 1s so the
  # 5x budget is never zero).
  RECORD=$(( SMOKE_SECS > 0 ? SMOKE_SECS : 1 ))
  echo "$RECORD" > "$BASELINE_FILE"
  echo "-- recorded bench smoke baseline: ${RECORD}s -> ${BASELINE_FILE}"
fi

step_begin "serve smoke: daemon round-trip, kill -9, crash-safe cache recovery"
# End-to-end service hardening check against the real CLI daemon:
#   1. boot `bgpc-cli serve` on an ephemeral port, wait for --addr-file;
#   2. drive mixed priorities/schedules/deadlines through serve_smoke
#      (each returned coloring is re-verified client-side);
#   3. kill -9 the daemon mid-life, restart it on the SAME cache dir;
#   4. re-run the same jobs requiring cache hits — proving the
#      temp-then-rename cache store survived SIGKILL readable — then
#      stop the daemon via the protocol's Shutdown verb.
SERVE_TMP=$(mktemp -d)
SERVE_PID=""
serve_cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$SERVE_TMP"
}
trap serve_cleanup EXIT

serve_start() {
  rm -f "$SERVE_TMP/addr"
  ./target/release/bgpc-cli serve --addr 127.0.0.1:0 \
    --addr-file "$SERVE_TMP/addr" --cache-dir "$SERVE_TMP/cache" \
    --threads 2 --queue-capacity 16 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$SERVE_TMP/addr" ]] && return 0
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
      echo "verify: FAIL — serve daemon exited before binding" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "verify: FAIL — serve daemon never wrote its address file" >&2
  exit 1
}

serve_start
# --updates sends edge deltas against just-submitted patterns and requires
# each to be served from the reused cache entry (incremental dirty-set
# recolor seeded from the cached base coloring).
./target/release/serve_smoke "$(cat "$SERVE_TMP/addr")" --jobs 12 --seed 1 --updates 3
echo "-- kill -9 the daemon (crash-consistency check)"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
serve_start
# Same seed ⇒ same fingerprints ⇒ the SIGKILLed store must serve hits;
# the repeated updates now hit the mutated-fingerprint entries stored by
# the first run's update phase.
./target/release/serve_smoke "$(cat "$SERVE_TMP/addr")" --jobs 12 --seed 1 \
  --updates 3 --require-cache-hits --shutdown
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
trap - EXIT
serve_cleanup
step_end "serve-smoke"

step_begin "shard smoke: 2-worker sharded coloring, worker kill, degraded fallback"
# End-to-end check of the multi-process sharded path against real worker
# processes:
#   1. boot two `bgpc-cli serve` workers on ephemeral ports;
#   2. run `bgpc-cli shard` against them and require a clean (verified,
#      non-degraded) two-shard result;
#   3. kill -9 one worker and re-run — the coordinator must drop the dead
#      shard, still produce a verified coloring, and tag the result with
#      a greppable `degraded:` line while exiting 0.
SHARD_TMP=$(mktemp -d)
SHARD_PIDS=()
shard_cleanup() {
  for p in "${SHARD_PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$SHARD_TMP"
}
trap shard_cleanup EXIT
for i in 0 1; do
  ./target/release/bgpc-cli serve --addr 127.0.0.1:0 \
    --addr-file "$SHARD_TMP/addr$i" --cache-dir "$SHARD_TMP/cache$i" \
    --threads 1 &
  SHARD_PIDS+=($!)
done
for i in 0 1; do
  for _ in $(seq 1 100); do
    [[ -s "$SHARD_TMP/addr$i" ]] && break
    sleep 0.1
  done
  if [[ ! -s "$SHARD_TMP/addr$i" ]]; then
    echo "verify: FAIL — shard worker $i never wrote its address file" >&2
    exit 1
  fi
done
WORKERS="$(cat "$SHARD_TMP/addr0"),$(cat "$SHARD_TMP/addr1")"
CLEAN_OUT=$(./target/release/bgpc-cli shard --workers "$WORKERS" \
  --dataset coPapersDBLP --scale 0.002 --partition cyclic)
echo "$CLEAN_OUT" | grep -q "workers=2/2 .* verified=true" \
  || { echo "verify: FAIL — clean sharded run did not verify on 2/2 workers" >&2; exit 1; }
if echo "$CLEAN_OUT" | grep -q "^degraded:"; then
  echo "verify: FAIL — clean sharded run reported a degrade" >&2
  exit 1
fi
echo "-- kill -9 one shard worker (degraded-fallback check)"
kill -9 "${SHARD_PIDS[1]}"
wait "${SHARD_PIDS[1]}" 2>/dev/null || true
DEGRADED_OUT=$(./target/release/bgpc-cli shard --workers "$WORKERS" \
  --dataset coPapersDBLP --scale 0.002 --partition cyclic)
echo "$DEGRADED_OUT" | grep -q "verified=true" \
  || { echo "verify: FAIL — degraded sharded run produced no verified coloring" >&2; exit 1; }
echo "$DEGRADED_OUT" | grep -q "^degraded:" \
  || { echo "verify: FAIL — dead worker was not reported on a degraded: line" >&2; exit 1; }
echo "-- degraded run stayed valid: $(echo "$DEGRADED_OUT" | grep "^degraded:")"
trap - EXIT
shard_cleanup
step_end "shard-smoke"

echo "verify: OK"
