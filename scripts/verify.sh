#!/usr/bin/env bash
# Tier-1 verification: hermetic build + tests + lints, fully offline.
# The workspace has zero registry dependencies (see README "Hermetic
# offline build"), so --offline must always succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "== cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "== cargo clippy --workspace --all-targets --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== bench smoke: bench_coloring --smoke (verifies every coloring)"
# The smoke run exits nonzero if any schedule produces an invalid
# coloring; its JSON goes under target/ so it never clobbers the
# checked-in BENCH_coloring.json from scripts/bench.sh.
./target/release/bench_coloring --smoke --out target/BENCH_smoke.json
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool target/BENCH_smoke.json >/dev/null
  echo "bench smoke JSON parses"
else
  # Fallback: the emitted report always ends with a closing brace.
  grep -q '}' target/BENCH_smoke.json
  echo "bench smoke JSON present (python3 unavailable; shallow check)"
fi

echo "verify: OK"
