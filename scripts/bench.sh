#!/usr/bin/env bash
# Deterministic quick-mode benchmark run: forbidden-set microbench plus
# end-to-end schedule timings on the synthetic dataset registry, written
# to BENCH_coloring.json at the repo root.
#
#   ./scripts/bench.sh            # quick mode (default)
#   ./scripts/bench.sh --full     # larger scale, more threads/reps
#   ./scripts/bench.sh --smoke    # seconds-long pipeline exercise
#   ./scripts/bench.sh --trace    # smoke run + chrome-trace export,
#                                 # schema-checked; report/trace go under
#                                 # target/ (does not touch the checked-in
#                                 # BENCH_coloring.json)
#   ./scripts/bench.sh --check-deep  # long randomized concurrency-checker
#                                 # and differential-oracle sweep (no
#                                 # benchmarks; see crates/check)
#   ./scripts/bench.sh --serve    # daemon load test (bench_serve): client
#                                 # threads vs a bounded admission queue;
#                                 # p50/p99 latency, throughput, cache-hit
#                                 # and shed rates -> BENCH_serve.json
#   ./scripts/bench.sh --dist     # sharded-coloring scaling (bench_dist):
#                                 # the coordinator over worker daemons at
#                                 # 1/2/4/8 shards; wall time, rounds and
#                                 # message volume -> BENCH_dist.json
#
# The coloring modes additionally accept, after the mode flag:
#   --kernel scalar|simd|auto     # pin the forbidden-set kernel axis
#   --pin                         # pin workers core-major (see par::topo)
#   --kernel-sweep                # run the report once per kernel side,
#                                 # writing BENCH_coloring_scalar.json and
#                                 # BENCH_coloring_simd.json for A/B diffs
#   --autotune                    # additionally measure the engine-chosen
#                                 # config per cell and score it against
#                                 # the sweep's oracle best (see
#                                 # scripts/fit_engine.sh)
#   --delta                       # additionally measure incremental
#                                 # update batches (apply_delta + dirty-set
#                                 # recolor) against full recolor on the
#                                 # power-law analogue
#
# Instances are generated from the in-repo synthetic registry with a
# fixed seed, so consecutive runs time identical work. Every coloring is
# verified; an invalid coloring fails the run.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE_FLAG="--quick"
TRACE_MODE=0
MODE_CONSUMED=1
case "${1:-}" in
  # A trailing axis flag in first position means quick mode was implied
  # (e.g. `bench.sh --autotune`); leave it for the trailing parser.
  --kernel | --pin | --kernel-sweep | --autotune | --delta) MODE_CONSUMED=0 ;;
  --full) MODE_FLAG="" ;;
  --smoke) MODE_FLAG="--smoke" ;;
  --trace)
    MODE_FLAG="--smoke"
    TRACE_MODE=1
    ;;
  --check-deep)
    echo "== cargo build --release --offline -p check (check_smoke)"
    cargo build --release --offline -p check --bin check_smoke
    echo "== check_smoke --deep (long randomized sweep; CHECK_SEED=${CHECK_SEED:-20260806})"
    ./target/release/check_smoke --deep --seed "${CHECK_SEED:-20260806}" --cases 2000
    echo "bench: OK (deep check clean)"
    exit 0
    ;;
  --serve)
    echo "== cargo build --release --offline -p serve (bench_serve)"
    cargo build --release --offline -p serve --bin bench_serve
    echo "== bench_serve (in-process daemon, bounded queue, mixed clients)"
    ./target/release/bench_serve --out BENCH_serve.json \
      --jobs 48 --clients 4 --distinct 6 --queue-capacity 8 --threads 4
    if command -v python3 >/dev/null 2>&1; then
      python3 -m json.tool BENCH_serve.json >/dev/null
      echo "serve bench JSON parses"
    fi
    echo "bench: OK (wrote BENCH_serve.json)"
    exit 0
    ;;
  --dist)
    echo "== cargo build --release --offline -p dist (bench_dist)"
    cargo build --release --offline -p dist --bin bench_dist
    echo "== bench_dist (coordinator over worker daemons, 1/2/4/8 shards)"
    ./target/release/bench_dist --out BENCH_dist.json
    if command -v python3 >/dev/null 2>&1; then
      python3 -m json.tool BENCH_dist.json >/dev/null
      echo "dist bench JSON parses"
    fi
    echo "bench: OK (wrote BENCH_dist.json)"
    exit 0
    ;;
  "" | --quick) ;;
  *)
    echo "usage: $0 [--quick|--full|--smoke|--trace|--check-deep|--serve|--dist]" \
         "[--kernel K] [--pin] [--kernel-sweep]" >&2
    exit 2
    ;;
esac

# Trailing axis flags for the coloring modes, passed through to
# bench_coloring (the --serve/--check-deep branches exit above and take
# none).
if [[ $# -gt 0 && "$MODE_CONSUMED" == 1 ]]; then shift; fi
KERNEL_FLAGS=()
KERNEL_SWEEP=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --kernel)
      [[ $# -ge 2 ]] || { echo "bench.sh: --kernel needs a value" >&2; exit 2; }
      KERNEL_FLAGS+=("--kernel" "$2")
      shift 2
      ;;
    --pin)
      KERNEL_FLAGS+=("--pin")
      shift
      ;;
    --kernel-sweep)
      KERNEL_SWEEP=1
      shift
      ;;
    --autotune)
      KERNEL_FLAGS+=("--autotune")
      shift
      ;;
    --delta)
      KERNEL_FLAGS+=("--delta")
      shift
      ;;
    *)
      echo "bench.sh: unknown trailing flag \`$1\` (expected --kernel K, --pin," \
           "--kernel-sweep, --autotune, --delta)" >&2
      exit 2
      ;;
  esac
done

echo "== cargo build --release --offline -p bench (bench_coloring)"
cargo build --release --offline -p bench --bin bench_coloring

# Stamp the report with provenance so a checked-in BENCH_coloring.json is
# traceable to the tree and machine that produced it. bench_coloring reads
# these and falls back to "unknown" when run by hand.
BENCH_GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
BENCH_HOSTNAME="$(hostname 2>/dev/null || echo unknown)"
BENCH_NPROC="$(nproc 2>/dev/null || echo unknown)"
export BENCH_GIT_SHA BENCH_HOSTNAME
echo "== provenance: sha=${BENCH_GIT_SHA} host=${BENCH_HOSTNAME} threads=${BENCH_NPROC}"

if [[ "$TRACE_MODE" == 1 ]]; then
  echo "== bench_coloring --smoke --trace (observability smoke)"
  cargo build --release --offline -p trace --bin trace_schema_check
  ./target/release/bench_coloring --smoke ${KERNEL_FLAGS[@]+"${KERNEL_FLAGS[@]}"} \
    --out target/BENCH_trace_smoke.json \
    --trace target/BENCH_trace_smoke.trace.json
  echo "== trace_schema_check (chrome-trace schema + imbalance table)"
  ./target/release/trace_schema_check target/BENCH_trace_smoke.trace.json
  echo "bench: OK (wrote target/BENCH_trace_smoke.trace.json)"
  exit 0
fi

if [[ "$KERNEL_SWEEP" == 1 ]]; then
  echo "== bench_coloring kernel sweep: scalar vs simd sides"
  for side in scalar simd; do
    # shellcheck disable=SC2086  # MODE_FLAG is intentionally word-split
    ./target/release/bench_coloring ${MODE_FLAG} --kernel "$side" \
      ${KERNEL_FLAGS[@]+"${KERNEL_FLAGS[@]}"} \
      --out "BENCH_coloring_${side}.json"
  done
  echo "bench: OK (wrote BENCH_coloring_scalar.json, BENCH_coloring_simd.json)"
  exit 0
fi

echo "== bench_coloring ${MODE_FLAG:-(full)}"
# shellcheck disable=SC2086  # MODE_FLAG is intentionally word-split
./target/release/bench_coloring ${MODE_FLAG} ${KERNEL_FLAGS[@]+"${KERNEL_FLAGS[@]}"} \
  --out BENCH_coloring.json

echo "== microbench: forbidden-set representations"
cargo bench --offline -p bench --bench forbidden

echo "== microbench: tracing overhead (on vs off)"
cargo bench --offline -p bench --bench trace_overhead

echo "bench: OK (wrote BENCH_coloring.json)"
