#!/usr/bin/env bash
# Refits the engine's decision table from a BENCH_coloring.json sweep:
#
#   ./scripts/bench.sh                # produce/refresh the sweep
#   ./scripts/fit_engine.sh           # rewrite the checked-in table
#   cargo build --offline --release   # table is include_str!'d — rebuild
#   ./scripts/bench.sh --autotune ... # measure the engine against oracle
#
# Flags pass through to the fit_engine binary:
#   --sweep PATH   sweep report to fit from (default BENCH_coloring.json)
#   --out PATH     table to write (default
#                  crates/core/src/engine/default_table.txt)
#
# The fitter re-parses its own output before writing, so a bad fit cannot
# land a table the engine fails to load.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release --offline -p bench (fit_engine)"
cargo build --release --offline -p bench --bin fit_engine
./target/release/fit_engine "$@"
