//! Property-based tests over the core invariants:
//!
//! * every schedule yields a complete, valid coloring on arbitrary
//!   bipartite patterns and symmetric graphs;
//! * single-threaded `V-V` reproduces the sequential greedy exactly;
//! * Lemma 1 (net coloring stays within the per-net lower bound on the
//!   first pass);
//! * compression round-trips through any valid coloring;
//! * orderings are permutations.
//!
//! Built on the in-repo `minicheck` choice-stream harness (see its crate
//! docs); failures shrink and print a `MINICHECK_SEED` reproduction.

use minicheck::{check, prop_assert, prop_assert_eq, prop_assume, Gen};

use bgpc_suite::bgpc::{self, Balance, Schedule};
use bgpc_suite::compress::{SeedMatrix, SparseF64};
use bgpc_suite::graph::{BipartiteGraph, Graph, Ordering};
use bgpc_suite::par::Pool;
use bgpc_suite::sparse::Csr;

/// Arbitrary bipartite pattern: up to 24 nets over up to 32 vertices.
fn arb_bipartite(g: &mut Gen) -> Csr {
    let nrows = g.usize_in(1..24);
    let ncols = g.usize_in(1..32);
    let rows: Vec<Vec<u32>> =
        (0..nrows).map(|_| g.vec_of(0..12, |g| g.u32_in(0..ncols as u32))).collect();
    Csr::from_rows(ncols, &rows)
}

/// Arbitrary simple undirected graph as a symmetric pattern.
fn arb_symmetric(g: &mut Gen) -> Csr {
    let n = g.usize_in(2..28);
    let edges = g.vec_of(0..60, |g| (g.usize_in(0..n), g.usize_in(0..n)));
    let mut coo = bgpc_suite::sparse::Coo::new(n, n);
    for (u, v) in edges {
        if u != v {
            coo.push_symmetric(u, v);
        }
    }
    coo.into_csr()
}

#[test]
fn bgpc_all_schedules_valid() {
    check("bgpc_all_schedules_valid", 48, |gen| {
        let matrix = arb_bipartite(gen);
        let threads = gen.usize_in(1..4);
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(threads);
        for schedule in Schedule::all() {
            let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            prop_assert!(
                bgpc::verify::verify_bgpc(&g, &r.colors).is_ok(),
                "{} invalid",
                schedule.name()
            );
            prop_assert!(r.num_colors >= g.max_net_size());
        }
        Ok(())
    });
}

#[test]
fn bgpc_balanced_schedules_valid() {
    check("bgpc_balanced_schedules_valid", 48, |gen| {
        let matrix = arb_bipartite(gen);
        let threads = gen.usize_in(1..4);
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(threads);
        for balance in [Balance::B1, Balance::B2] {
            for base in [Schedule::v_n(2), Schedule::n1_n2()] {
                let schedule = base.with_balance(balance);
                let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
                prop_assert!(
                    bgpc::verify::verify_bgpc(&g, &r.colors).is_ok(),
                    "{} invalid",
                    schedule.name()
                );
            }
        }
        Ok(())
    });
}

#[test]
fn single_thread_vv_equals_sequential() {
    check("single_thread_vv_equals_sequential", 48, |gen| {
        let matrix = arb_bipartite(gen);
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(1);
        let r = bgpc::color_bgpc(&g, &order, &Schedule::v_v(), &pool);
        let (seq, k) = bgpc::seq::color_bgpc_seq(&g, &order);
        prop_assert_eq!(r.rounds(), if g.n_vertices() == 0 { 0 } else { 1 });
        prop_assert_eq!(r.num_colors, k);
        prop_assert_eq!(r.colors, seq);
        Ok(())
    });
}

#[test]
fn lemma1_first_net_pass_within_bound() {
    // Sequential single net pass from an empty coloring: every color
    // must stay below the max net size (the trivial lower bound).
    use bgpc_suite::bgpc::net::{color_workqueue_net, NetColoringVariant};
    use bgpc_suite::bgpc::{ctx::ThreadCtx, Colors};
    use bgpc_suite::par::ThreadScratch;
    check("lemma1_first_net_pass_within_bound", 48, |gen| {
        let matrix = arb_bipartite(gen);
        let g = BipartiteGraph::from_matrix(&matrix);
        prop_assume!(g.max_net_size() > 0);
        let pool = Pool::new(1);
        let colors = Colors::new(g.n_vertices());
        let sc: ThreadScratch<ThreadCtx> = ThreadScratch::new(1, |_| ThreadCtx::new(16));
        color_workqueue_net(
            &g,
            &colors,
            &pool,
            bgpc_suite::par::Sched::Dynamic,
            NetColoringVariant::TwoPassReverse,
            Balance::Unbalanced,
            &sc,
        );
        let bound = g.max_net_size() as i32;
        for u in 0..g.n_vertices() {
            let c = colors.get(u);
            if c >= 0 {
                prop_assert!(c < bound, "vertex {} color {} >= bound {}", u, c, bound);
            } else {
                // only vertices in no net stay uncolored
                prop_assert!(g.nets(u).is_empty());
            }
        }
        Ok(())
    });
}

#[test]
fn d2gc_all_schedules_valid() {
    check("d2gc_all_schedules_valid", 48, |gen| {
        let matrix = arb_symmetric(gen);
        let threads = gen.usize_in(1..4);
        let g = Graph::from_symmetric_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(threads);
        for schedule in Schedule::d2gc_set() {
            let r = bgpc::d2gc::color_d2gc(&g, &order, &schedule, &pool);
            prop_assert!(
                bgpc::verify::verify_d2gc(&g, &r.colors).is_ok(),
                "{} invalid",
                schedule.name()
            );
            prop_assert!(r.num_colors > g.max_degree() || g.n_vertices() == 0);
        }
        Ok(())
    });
}

#[test]
fn d2gc_single_thread_vv_equals_sequential() {
    check("d2gc_single_thread_vv_equals_sequential", 48, |gen| {
        let matrix = arb_symmetric(gen);
        let g = Graph::from_symmetric_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(1);
        let r = bgpc::d2gc::color_d2gc(&g, &order, &Schedule::v_v(), &pool);
        let (seq, _) = bgpc::seq::color_d2gc_seq(&g, &order);
        prop_assert_eq!(r.colors, seq);
        Ok(())
    });
}

#[test]
fn compression_roundtrip_through_any_schedule() {
    check("compression_roundtrip_through_any_schedule", 48, |gen| {
        let matrix = arb_bipartite(gen);
        let threads = gen.usize_in(1..4);
        let which = gen.usize_in(0..8);
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(threads);
        let schedule = &Schedule::all()[which];
        let r = bgpc::color_bgpc(&g, &order, schedule, &pool);
        let seed = SeedMatrix::from_coloring(&r.colors);
        let jac = SparseF64::with_synthetic_values(matrix.clone());
        let compressed = jac.compress(&seed);
        let recovered = SparseF64::recover(&matrix, &seed, &compressed);
        prop_assert_eq!(recovered, jac);
        Ok(())
    });
}

#[test]
fn orderings_are_permutations() {
    check("orderings_are_permutations", 48, |gen| {
        let matrix = arb_bipartite(gen);
        let seed = gen.u64_in(0..100);
        let g = BipartiteGraph::from_matrix(&matrix);
        let n = g.n_vertices();
        for ordering in [
            Ordering::Natural,
            Ordering::Random(seed),
            Ordering::LargestFirst,
            Ordering::SmallestLast,
        ] {
            let order = ordering.vertex_order_bgpc(&g);
            prop_assert_eq!(order.len(), n);
            let mut seen = vec![false; n];
            for &u in &order {
                prop_assert!(!seen[u as usize], "{} duplicated", u);
                seen[u as usize] = true;
            }
        }
        Ok(())
    });
}

#[test]
fn transpose_involution_and_coloring_agree() {
    check("transpose_involution_and_coloring_agree", 48, |gen| {
        // Structural sanity that the coloring relies on: nets(u) of the
        // bipartite view equals the transpose's rows.
        let matrix = arb_bipartite(gen);
        let g = BipartiteGraph::from_matrix(&matrix);
        let t = matrix.transpose();
        for u in 0..g.n_vertices() {
            prop_assert_eq!(g.nets(u), t.row(u));
        }
        prop_assert_eq!(t.transpose(), matrix.clone());
        Ok(())
    });
}
