//! Property-based tests over the core invariants:
//!
//! * every schedule yields a complete, valid coloring on arbitrary
//!   bipartite patterns and symmetric graphs;
//! * single-threaded `V-V` reproduces the sequential greedy exactly;
//! * Lemma 1 (net coloring stays within the per-net lower bound on the
//!   first pass);
//! * compression round-trips through any valid coloring;
//! * orderings are permutations.

use proptest::prelude::*;

use bgpc_suite::bgpc::{self, Balance, Schedule};
use bgpc_suite::compress::{SeedMatrix, SparseF64};
use bgpc_suite::graph::{BipartiteGraph, Graph, Ordering};
use bgpc_suite::par::Pool;
use bgpc_suite::sparse::Csr;

/// Arbitrary bipartite pattern: up to 24 nets over up to 32 vertices.
fn arb_bipartite() -> impl Strategy<Value = Csr> {
    (1usize..24, 1usize..32).prop_flat_map(|(nrows, ncols)| {
        proptest::collection::vec(
            proptest::collection::vec(0..ncols as u32, 0..12usize),
            nrows,
        )
        .prop_map(move |rows| Csr::from_rows(ncols, &rows))
    })
}

/// Arbitrary simple undirected graph as a symmetric pattern.
fn arb_symmetric() -> impl Strategy<Value = Csr> {
    (2usize..28).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60usize).prop_map(move |edges| {
            let mut coo = bgpc_suite::sparse::Coo::new(n, n);
            for (u, v) in edges {
                if u != v {
                    coo.push_symmetric(u, v);
                }
            }
            coo.into_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bgpc_all_schedules_valid(matrix in arb_bipartite(), threads in 1usize..4) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(threads);
        for schedule in Schedule::all() {
            let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            prop_assert!(bgpc::verify::verify_bgpc(&g, &r.colors).is_ok(),
                "{} invalid", schedule.name());
            prop_assert!(r.num_colors >= g.max_net_size());
        }
    }

    #[test]
    fn bgpc_balanced_schedules_valid(matrix in arb_bipartite(), threads in 1usize..4) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(threads);
        for balance in [Balance::B1, Balance::B2] {
            for base in [Schedule::v_n(2), Schedule::n1_n2()] {
                let schedule = base.with_balance(balance);
                let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
                prop_assert!(bgpc::verify::verify_bgpc(&g, &r.colors).is_ok(),
                    "{} invalid", schedule.name());
            }
        }
    }

    #[test]
    fn single_thread_vv_equals_sequential(matrix in arb_bipartite()) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(1);
        let r = bgpc::color_bgpc(&g, &order, &Schedule::v_v(), &pool);
        let (seq, k) = bgpc::seq::color_bgpc_seq(&g, &order);
        prop_assert_eq!(r.rounds(), if g.n_vertices() == 0 { 0 } else { 1 });
        prop_assert_eq!(r.num_colors, k);
        prop_assert_eq!(r.colors, seq);
    }

    #[test]
    fn lemma1_first_net_pass_within_bound(matrix in arb_bipartite()) {
        // Sequential single net pass from an empty coloring: every color
        // must stay below the max net size (the trivial lower bound).
        use bgpc_suite::bgpc::net::{color_workqueue_net, NetColoringVariant};
        use bgpc_suite::bgpc::{ctx::ThreadCtx, Colors};
        use bgpc_suite::par::ThreadScratch;
        let g = BipartiteGraph::from_matrix(&matrix);
        prop_assume!(g.max_net_size() > 0);
        let pool = Pool::new(1);
        let colors = Colors::new(g.n_vertices());
        let sc = ThreadScratch::new(1, |_| ThreadCtx::new(16));
        color_workqueue_net(
            &g, &colors, &pool,
            NetColoringVariant::TwoPassReverse, Balance::Unbalanced, &sc,
        );
        let bound = g.max_net_size() as i32;
        for u in 0..g.n_vertices() {
            let c = colors.get(u);
            if c >= 0 {
                prop_assert!(c < bound, "vertex {} color {} >= bound {}", u, c, bound);
            } else {
                // only vertices in no net stay uncolored
                prop_assert!(g.nets(u).is_empty());
            }
        }
    }

    #[test]
    fn d2gc_all_schedules_valid(matrix in arb_symmetric(), threads in 1usize..4) {
        let g = Graph::from_symmetric_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(threads);
        for schedule in Schedule::d2gc_set() {
            let r = bgpc::d2gc::color_d2gc(&g, &order, &schedule, &pool);
            prop_assert!(bgpc::verify::verify_d2gc(&g, &r.colors).is_ok(),
                "{} invalid", schedule.name());
            prop_assert!(r.num_colors > g.max_degree() || g.n_vertices() == 0);
        }
    }

    #[test]
    fn d2gc_single_thread_vv_equals_sequential(matrix in arb_symmetric()) {
        let g = Graph::from_symmetric_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(1);
        let r = bgpc::d2gc::color_d2gc(&g, &order, &Schedule::v_v(), &pool);
        let (seq, _) = bgpc::seq::color_d2gc_seq(&g, &order);
        prop_assert_eq!(r.colors, seq);
    }

    #[test]
    fn compression_roundtrip_through_any_schedule(
        matrix in arb_bipartite(),
        threads in 1usize..4,
        which in 0usize..8,
    ) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let pool = Pool::new(threads);
        let schedule = &Schedule::all()[which];
        let r = bgpc::color_bgpc(&g, &order, schedule, &pool);
        let seed = SeedMatrix::from_coloring(&r.colors);
        let jac = SparseF64::with_synthetic_values(matrix.clone());
        let compressed = jac.compress(&seed);
        let recovered = SparseF64::recover(&matrix, &seed, &compressed);
        prop_assert_eq!(recovered, jac);
    }

    #[test]
    fn orderings_are_permutations(matrix in arb_bipartite(), seed in 0u64..100) {
        let g = BipartiteGraph::from_matrix(&matrix);
        let n = g.n_vertices();
        for ordering in [
            Ordering::Natural,
            Ordering::Random(seed),
            Ordering::LargestFirst,
            Ordering::SmallestLast,
        ] {
            let order = ordering.vertex_order_bgpc(&g);
            prop_assert_eq!(order.len(), n);
            let mut seen = vec![false; n];
            for &u in &order {
                prop_assert!(!seen[u as usize], "{} duplicated", u);
                seen[u as usize] = true;
            }
        }
    }

    #[test]
    fn transpose_involution_and_coloring_agree(matrix in arb_bipartite()) {
        // Structural sanity that the coloring relies on: nets(u) of the
        // bipartite view equals the transpose's rows.
        let g = BipartiteGraph::from_matrix(&matrix);
        let t = matrix.transpose();
        for u in 0..g.n_vertices() {
            prop_assert_eq!(g.nets(u), t.row(u));
        }
        prop_assert_eq!(t.transpose(), matrix);
    }
}
