//! Cross-crate integration tests: datasets → graphs → coloring → verify →
//! applications, exactly the pipeline the benchmark harness runs.

use bgpc_suite::bgpc::{self, Balance, Schedule};
use bgpc_suite::compress::{ColorClasses, SeedMatrix, SparseF64};
use bgpc_suite::graph::{BipartiteGraph, Graph, Ordering};
use bgpc_suite::par::Pool;
use bgpc_suite::sparse::Dataset;

const SCALE: f64 = 0.002;

#[test]
fn all_schedules_valid_on_every_dataset() {
    let pool = Pool::new(4);
    for dataset in Dataset::ALL {
        let inst = dataset.build(SCALE, 42);
        let g = BipartiteGraph::from_matrix(&inst.matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        for schedule in Schedule::all() {
            let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            bgpc::verify::verify_bgpc(&g, &r.colors).unwrap_or_else(|e| {
                panic!("{} on {}: {e}", schedule.name(), dataset.name())
            });
            assert!(
                r.num_colors >= g.max_net_size(),
                "{} on {}: {} colors below bound {}",
                schedule.name(),
                dataset.name(),
                r.num_colors,
                g.max_net_size()
            );
        }
    }
}

#[test]
fn d2gc_schedules_valid_on_symmetric_datasets() {
    let pool = Pool::new(4);
    for dataset in Dataset::D2GC {
        let inst = dataset.build(SCALE, 42);
        let g = Graph::from_symmetric_matrix(&inst.matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        for schedule in Schedule::d2gc_set() {
            let r = bgpc::d2gc::color_d2gc(&g, &order, &schedule, &pool);
            bgpc::verify::verify_d2gc(&g, &r.colors).unwrap_or_else(|e| {
                panic!("{} on {}: {e}", schedule.name(), dataset.name())
            });
            assert!(r.num_colors > g.max_degree());
        }
    }
}

#[test]
fn balanced_runs_reduce_class_spread_on_copapers() {
    let pool = Pool::new(8);
    let inst = Dataset::CoPapersDblp.build(0.004, 7);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);

    let run = |balance: Balance| {
        let r = bgpc::color_bgpc(&g, &order, &Schedule::v_n(2).with_balance(balance), &pool);
        bgpc::verify::verify_bgpc(&g, &r.colors).unwrap();
        bgpc::verify::ColorClassStats::from_colors(&r.colors)
    };
    let unbalanced = run(Balance::Unbalanced);
    let b2 = run(Balance::B2);
    // Paper Table VI: B2 cuts the std dev substantially (0.25x there);
    // require a reduction here.
    assert!(
        b2.std_dev < unbalanced.std_dev,
        "B2 std dev {} did not improve on U {}",
        b2.std_dev,
        unbalanced.std_dev
    );
}

#[test]
fn compression_roundtrips_on_dataset_instances() {
    let pool = Pool::new(2);
    for dataset in [Dataset::AfShell10, Dataset::Movielens20M] {
        let inst = dataset.build(SCALE, 3);
        let g = BipartiteGraph::from_matrix(&inst.matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let r = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
        let seed = SeedMatrix::from_coloring(&r.colors);
        let jac = SparseF64::with_synthetic_values(inst.matrix.clone());
        let compressed = jac.compress(&seed);
        let recovered = SparseF64::recover(&inst.matrix, &seed, &compressed);
        assert_eq!(recovered, jac, "{}", dataset.name());
        assert!(compressed.num_colors() < inst.matrix.ncols());
    }
}

#[test]
fn color_classes_are_conflict_free_sets() {
    let pool = Pool::new(3);
    let inst = Dataset::Bone010.build(SCALE, 5);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let r = bgpc::color_bgpc(&g, &order, &Schedule::v_n(1), &pool);
    let classes = ColorClasses::from_colors(&r.colors);
    assert_eq!(classes.len(), g.n_vertices());
    // No two members of a class may share a net.
    for class in classes.classes() {
        let members: std::collections::HashSet<u32> = class.iter().copied().collect();
        for &u in class {
            let mut hits = 0;
            for &v in g.nets(u as usize) {
                for &w in g.vtxs(v as usize) {
                    if w != u && members.contains(&w) {
                        hits += 1;
                    }
                }
            }
            assert_eq!(hits, 0, "class member {u} shares a net with another member");
        }
    }
}

#[test]
fn mtx_roundtrip_preserves_coloring_instance() {
    let inst = Dataset::Nlpkkt120.build(SCALE, 11);
    let mut buf = Vec::new();
    bgpc_suite::sparse::mm::write_pattern(&mut buf, &inst.matrix).unwrap();
    let back = bgpc_suite::sparse::mm::read_pattern(buf.as_slice()).unwrap();
    assert_eq!(back, inst.matrix);

    // Coloring the re-read instance gives identical sequential results.
    let g1 = BipartiteGraph::from_matrix(&inst.matrix);
    let g2 = BipartiteGraph::from_matrix(&back);
    let order = Ordering::Natural.vertex_order_bgpc(&g1);
    let (c1, _) = bgpc::seq::color_bgpc_seq(&g1, &order);
    let (c2, _) = bgpc::seq::color_bgpc_seq(&g2, &order);
    assert_eq!(c1, c2);
}

#[test]
fn orderings_change_colors_not_validity() {
    let pool = Pool::new(2);
    let inst = Dataset::CoPapersDblp.build(SCALE, 13);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    for ordering in [
        Ordering::Natural,
        Ordering::Random(5),
        Ordering::LargestFirst,
        Ordering::SmallestLast,
    ] {
        let order = ordering.vertex_order_bgpc(&g);
        assert_eq!(order.len(), g.n_vertices());
        let r = bgpc::color_bgpc(&g, &order, &Schedule::v_v_64d(), &pool);
        bgpc::verify::verify_bgpc(&g, &r.colors)
            .unwrap_or_else(|e| panic!("{}: {e}", ordering.label()));
    }
}

#[test]
fn sixteen_thread_oversubscription_is_correct() {
    // The host may have fewer cores than 16; correctness must not depend
    // on the team fitting the hardware.
    let pool = Pool::new(16);
    let inst = Dataset::Channel.build(SCALE, 17);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    for schedule in [Schedule::v_v(), Schedule::n1_n2()] {
        let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        bgpc::verify::verify_bgpc(&g, &r.colors).unwrap();
    }
}
