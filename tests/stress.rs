//! Stress and robustness tests: bigger instances, high oversubscription,
//! adversarial structures, and cross-module pipelines (RCM → coloring).

use bgpc_suite::bgpc::{self, Schedule};
use bgpc_suite::graph::{BipartiteGraph, Graph, Ordering};
use bgpc_suite::par::Pool;

#[test]
fn large_powerlaw_instance_all_headline_schedules() {
    let m = bgpc_suite::sparse::gen::chung_lu(20_000, 200_000, 2.2, 2_000, true, 5);
    let g = BipartiteGraph::from_matrix(&m);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(8);
    for schedule in [Schedule::v_v_64d(), Schedule::v_n(2), Schedule::n1_n2()] {
        let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        bgpc::verify::verify_bgpc(&g, &r.colors)
            .unwrap_or_else(|e| panic!("{}: {e}", schedule.name()));
        assert!(r.rounds() < 64, "{} took {} rounds", schedule.name(), r.rounds());
    }
}

#[test]
fn pathological_single_giant_net() {
    // One net containing every vertex: a distance-2 clique. Every
    // schedule must converge to exactly n colors.
    let n = 2_000;
    let m = bgpc_suite::sparse::Csr::from_rows(n, &[(0..n as u32).collect()]);
    let g = BipartiteGraph::from_matrix(&m);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(8);
    for schedule in [Schedule::v_v(), Schedule::n1_n2()] {
        let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        bgpc::verify::verify_bgpc(&g, &r.colors).unwrap();
        assert_eq!(r.num_colors, n, "{}", schedule.name());
    }
}

#[test]
fn many_tiny_disjoint_nets() {
    // 10k disjoint pairs: 2 colors suffice, conflicts impossible across
    // nets; exercises queue mechanics with maximal parallel slack.
    let n = 10_000;
    let rows: Vec<Vec<u32>> = (0..n / 2)
        .map(|i| vec![2 * i as u32, 2 * i as u32 + 1])
        .collect();
    let m = bgpc_suite::sparse::Csr::from_rows(n, &rows);
    let g = BipartiteGraph::from_matrix(&m);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(8);
    let r = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
    bgpc::verify::verify_bgpc(&g, &r.colors).unwrap();
    assert_eq!(r.num_colors, 2);
}

#[test]
fn empty_nets_and_isolated_vertices() {
    // Nets with no pins and vertices in no net must not break anything.
    let m = bgpc_suite::sparse::Csr::from_rows(5, &[vec![], vec![1, 3], vec![]]);
    let g = BipartiteGraph::from_matrix(&m);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    for schedule in Schedule::all() {
        let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        bgpc::verify::verify_bgpc(&g, &r.colors)
            .unwrap_or_else(|e| panic!("{}: {e}", schedule.name()));
    }
}

#[test]
fn rcm_relabeling_keeps_coloring_valid_and_quality_similar() {
    let m = bgpc_suite::sparse::gen::erdos_renyi(800, 4_000, 9);
    let g0 = Graph::from_symmetric_matrix(&m);
    let perm = bgpc_suite::graph::rcm_permutation(&g0);
    let relabeled = m.permute_symmetric(&perm);
    assert!(relabeled.is_structurally_symmetric());
    // RCM should reduce (or keep) the bandwidth.
    let g1 = Graph::from_symmetric_matrix(&relabeled);
    let ident: Vec<u32> = (0..800).collect();
    assert!(
        bgpc_suite::graph::bandwidth(&g1, &ident) <= bgpc_suite::graph::bandwidth(&g0, &ident)
    );
    // D2GC on both labelings: valid, similar color counts.
    let pool = Pool::new(4);
    let o0 = Ordering::Natural.vertex_order_d2(&g0);
    let o1 = Ordering::Natural.vertex_order_d2(&g1);
    let r0 = bgpc::d2gc::color_d2gc(&g0, &o0, &Schedule::v_n(1), &pool);
    let r1 = bgpc::d2gc::color_d2gc(&g1, &o1, &Schedule::v_n(1), &pool);
    bgpc::verify::verify_d2gc(&g0, &r0.colors).unwrap();
    bgpc::verify::verify_d2gc(&g1, &r1.colors).unwrap();
    let (lo, hi) = (r0.num_colors.min(r1.num_colors), r0.num_colors.max(r1.num_colors));
    assert!(hi <= 2 * lo, "relabeling should not explode colors: {lo} vs {hi}");
}

#[test]
fn repeated_runs_do_not_leak_state_across_pool_reuse() {
    // One pool reused for 50 full colorings; scratch state must never
    // leak between runs (the stamp-marker trick's contract).
    let m = bgpc_suite::sparse::gen::bipartite_uniform(100, 150, 2_000, 3);
    let g = BipartiteGraph::from_matrix(&m);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    let mut color_counts = std::collections::HashSet::new();
    for _ in 0..50 {
        let r = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
        bgpc::verify::verify_bgpc(&g, &r.colors).unwrap();
        color_counts.insert(r.num_colors);
    }
    // nondeterministic scheduling may vary counts, but they stay sane
    assert!(color_counts.iter().all(|&k| k >= g.max_net_size()));
}

#[test]
fn jp_and_speculative_agree_on_validity_at_scale() {
    let m = bgpc_suite::sparse::gen::bipartite_uniform(2_000, 3_000, 30_000, 7);
    let g = BipartiteGraph::from_matrix(&m);
    let pool = Pool::new(8);
    let jp = bgpc::jp::color_bgpc_jp(&g, &pool, 42);
    bgpc::verify::verify_bgpc(&g, &jp.colors).unwrap();
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let spec = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
    bgpc::verify::verify_bgpc(&g, &spec.colors).unwrap();
    // JP needs at least max-net rounds; speculative converges in a few.
    assert!(jp.rounds > spec.rounds());
}
